//! The wire protocol: request/response shapes and their JSON codecs.
//!
//! Every request and every response is one JSON object on one line (see
//! [`crate::server`] for the framing).  A request names its verb in `op`
//! and may carry a client-chosen `id`, which is echoed verbatim in the
//! response so pipelined clients can correlate:
//!
//! ```text
//! {"op":"equivalence","id":1,"program":"...","goal":"buys","candidate":"..."}
//! {"id":1,"ok":true,"verb":"equivalence","result":{"equivalent":true,...}}
//! {"id":1,"ok":false,"error":{"code":"parse_error","message":"..."}}
//! ```
//!
//! Verbs: `containment`, `equivalence`, `bounded`, `optimize`, `minimize`
//! (CQ/UCQ minimisation through the shared decision cache), `rewrite`
//! (recursion elimination, returning the equivalent nonrecursive program
//! when one exists within the probed depth), `batch`, `stats`, the
//! observability pair `trace` (a containment decision run at an explicit
//! [`MetricsLevel`], returning its recorded events) and `metrics_text`
//! (Prometheus-style text exposition), plus the admin family
//! `clear_cache`, `cache_limits`, `save_cache`, `load_cache` (executed
//! off-pool, see [`crate::admin`]).  The `containment`, `trace`, and
//! `equivalence` verbs accept `options.provenance`, which attaches the
//! witness proof tree as structured JSON to any counterexample.  Error `code`s are stable
//! strings: transport-level (`invalid_json`, `bad_request`, `busy`,
//! `deadline_exceeded`, `connection_limit_exceeded`), parse-level
//! (`parse_error`, `mixed_arity`, `empty_query`), decision-level (the
//! [`nonrec_equivalence`] error codes such as `unknown_goal`,
//! `recursive_candidate`, `resource_limit`), and admin-level (`io_error`,
//! `snapshot_error`).  `docs/WIRE_PROTOCOL.md` documents every field of
//! every verb, with one request/response example each.

use datalog::eval::Strategy;
use metrics::MetricsLevel;
use nonrec_equivalence::cache::CacheLimits;
use nonrec_equivalence::containment::Schedule;

use crate::json::{obj, Value};

/// Most sub-requests one `batch` may carry: a batch occupies one queue
/// slot and one worker, so its size must be bounded for the queue bound to
/// mean anything.
pub const MAX_BATCH_REQUESTS: usize = 256;

/// Largest `max_events` a `trace` request may ask for.  Every retained
/// event becomes JSON in a single response line, so an unbounded budget
/// would let one request ask the server to render an arbitrarily large
/// line; past this cap the `truncated`/`dropped` fields tell the client
/// what the run would have emitted.
pub const MAX_TRACE_EVENTS: usize = 65_536;

/// A transportable error: a stable machine-readable code plus a
/// human-readable message.  The protocol layer speaks only these; library
/// errors are converted via their `code()` accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable error code (see the module docs for the vocabulary).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// A `bad_request` error (malformed or missing fields).
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError::new("bad_request", message)
    }
}

/// Per-request decision knobs, all optional on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestOptions {
    /// Consult the shared decision cache (`"no_cache": true` disables).
    pub use_cache: bool,
    /// Allow the word-automata fast path (`"no_word_path": true` disables).
    pub allow_word_path: bool,
    /// Abort tree containment after this many product pairs.
    pub max_pairs: Option<usize>,
    /// Per-request deadline override, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Evaluation strategy for the canonical-database checks
    /// (`"strategy": "naive" | "semi_naive" | "indexed" | "magic" |
    /// "auto"`); `None` keeps the engine default (auto: a planner pass
    /// picks magic when the adorned goal can prune, indexed otherwise).
    /// Verdicts are strategy-independent, so this never changes an answer —
    /// the strategy is the latency knob.
    pub strategy: Option<Strategy>,
    /// Attach the witness proof tree as structured JSON to any
    /// counterexample (`"provenance": true`).  Only the `containment`,
    /// `trace`, and `equivalence` verbs produce counterexamples; elsewhere
    /// the flag is accepted and ignored.
    pub provenance: bool,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            use_cache: true,
            allow_word_path: true,
            max_pairs: None,
            timeout_ms: None,
            strategy: None,
            provenance: false,
        }
    }
}

/// A parsed request: one verb plus its payload.  Program, query, and
/// candidate texts stay unparsed here — Datalog parsing happens on a worker
/// thread, not on the connection thread.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Decide `Π(goal) ⊆ Θ` for a UCQ `Θ`.
    Containment {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// UCQ text, one rule per line.
        query: String,
        /// Decision knobs.
        options: RequestOptions,
    },
    /// Decide `Π ≡ Π'` for a nonrecursive candidate Π'.
    Equivalence {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// Nonrecursive candidate program text.
        candidate: String,
        /// Decision knobs.
        options: RequestOptions,
    },
    /// Find the least depth at which the program is bounded, if any.
    Bounded {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// Largest unfolding depth to probe.
        max_depth: usize,
        /// Decision knobs.
        options: RequestOptions,
    },
    /// Run the optimisation pipeline and return the rewritten program.
    Optimize {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// Run the body-minimisation pass.
        minimize_bodies: bool,
        /// Run the subsumed-rule-removal pass.
        remove_subsumed: bool,
        /// Inline non-recursive predicates.
        inline_nonrecursive: bool,
        /// Decision knobs (only `timeout_ms` applies to this verb; the
        /// optimisation passes are bounded by input-size caps instead of
        /// `max_pairs`, see [`crate::engine`]).
        options: RequestOptions,
    },
    /// Minimise a UCQ: compute the core of every disjunct and drop
    /// subsumed disjuncts, deciding CQ containment through the shared
    /// decision cache.
    Minimize {
        /// UCQ text, one rule per line.
        query: String,
        /// Decision knobs (only `timeout_ms` applies; the containment
        /// oracle is bounded by input-size caps, see [`crate::engine`]).
        options: RequestOptions,
    },
    /// Eliminate recursion: find the least depth at which the program is
    /// bounded and return the equivalent nonrecursive program, if any.
    Rewrite {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// Largest unfolding depth to probe.
        max_depth: usize,
        /// Decision knobs.
        options: RequestOptions,
    },
    /// Run a containment decision at an explicit metrics level and return
    /// the structured events it recorded (the observability verb; see
    /// [`nonrec_equivalence::containment::datalog_contained_in_ucq_traced`]).
    Trace {
        /// Datalog program text.
        program: String,
        /// Goal predicate name.
        goal: String,
        /// UCQ text, one rule per line.
        query: String,
        /// How much detail to record (`"off"`, `"counters"`, `"debug"`,
        /// `"trace"`).
        level: MetricsLevel,
        /// Keep at most this many events; the rest are counted in the
        /// response's `dropped` field and flagged by `truncated`.
        max_events: usize,
        /// Worklist schedule for the tree engine (`"min_subset"` or
        /// `"fifo"`); verdicts are schedule-independent, so this only
        /// reorders the trace.  `None` keeps the engine default.
        schedule: Option<Schedule>,
        /// Decision knobs.
        options: RequestOptions,
    },
    /// Render the process-wide metrics counters and the per-verb latency
    /// histograms as Prometheus-style text exposition.  Answered on the
    /// connection thread like `stats` (scrapes must survive a saturated
    /// pool).
    MetricsText,
    /// Answer a list of sub-requests in order (one queue slot, one worker).
    Batch {
        /// The sub-requests; at most [`MAX_BATCH_REQUESTS`], nesting
        /// rejected at parse time.
        requests: Vec<Request>,
        /// Deadline for the whole batch; re-checked between items, so an
        /// expired batch stops computing and answers `deadline_exceeded`
        /// for its remaining items.
        timeout_ms: Option<u64>,
    },
    /// Report cache statistics and per-verb latency histograms.
    Stats,
    /// Drop every entry of the shared decision cache, reporting how many
    /// were held per segment.  Admin verb — answered on the connection
    /// thread, never queued.
    ClearCache,
    /// Read (no `set` field) or replace (`set` object) the cache's
    /// per-segment capacity limits.  Setting enforces immediately.
    CacheLimits {
        /// The limits to install; `None` is a pure read.  In a `set`
        /// object, an absent/`null` segment cap means unbounded.
        set: Option<CacheLimits>,
    },
    /// Persist the shared cache to a snapshot file on the **server's**
    /// filesystem (`path`, or the server's `--cache-file` default).
    SaveCache {
        /// Target path; `None` falls back to the configured default.
        path: Option<String>,
    },
    /// Merge a snapshot file into the live cache (warm start on demand).
    LoadCache {
        /// Source path; `None` falls back to the configured default.
        path: Option<String>,
    },
}

impl Command {
    /// The verb name, as it appears in `op` and in the `stats` histograms.
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Containment { .. } => "containment",
            Command::Equivalence { .. } => "equivalence",
            Command::Bounded { .. } => "bounded",
            Command::Optimize { .. } => "optimize",
            Command::Minimize { .. } => "minimize",
            Command::Rewrite { .. } => "rewrite",
            Command::Trace { .. } => "trace",
            Command::MetricsText => "metrics_text",
            Command::Batch { .. } => "batch",
            Command::Stats => "stats",
            Command::ClearCache => "clear_cache",
            Command::CacheLimits { .. } => "cache_limits",
            Command::SaveCache { .. } => "save_cache",
            Command::LoadCache { .. } => "load_cache",
        }
    }

    /// The per-request deadline override, when the verb carries one.
    pub fn timeout_ms(&self) -> Option<u64> {
        match self {
            Command::Containment { options, .. }
            | Command::Equivalence { options, .. }
            | Command::Bounded { options, .. }
            | Command::Optimize { options, .. }
            | Command::Minimize { options, .. }
            | Command::Rewrite { options, .. }
            | Command::Trace { options, .. } => options.timeout_ms,
            Command::Batch { timeout_ms, .. } => *timeout_ms,
            Command::Stats
            | Command::MetricsText
            | Command::ClearCache
            | Command::CacheLimits { .. }
            | Command::SaveCache { .. }
            | Command::LoadCache { .. } => None,
        }
    }

    /// True for the admin family (`clear_cache`, `cache_limits`,
    /// `save_cache`, `load_cache`): answered on the connection thread,
    /// rejected inside batches.
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Command::ClearCache
                | Command::CacheLimits { .. }
                | Command::SaveCache { .. }
                | Command::LoadCache { .. }
        )
    }
}

/// A request: the optional client correlation `id` plus the command.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response; `null`/absent are equivalent.
    pub id: Option<Value>,
    /// The verb and payload.
    pub command: Command,
}

/// Extract the correlation id of a request value, so error responses can
/// echo it even when the rest of the request does not parse.
pub fn request_id(value: &Value) -> Option<Value> {
    match value.get("id") {
        None | Some(Value::Null) => None,
        Some(other) => Some(other.clone()),
    }
}

fn required_str(value: &Value, key: &str) -> Result<String, WireError> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError::bad_request(format!("missing or non-string field `{key}`")))
}

fn optional_bool(value: &Value, key: &str) -> Result<bool, WireError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| WireError::bad_request(format!("field `{key}` must be a boolean"))),
    }
}

fn optional_u64(value: &Value, key: &str) -> Result<Option<u64>, WireError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WireError::bad_request(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn optional_str(value: &Value, key: &str) -> Result<Option<String>, WireError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| WireError::bad_request(format!("field `{key}` must be a string"))),
    }
}

/// Parse the `set` object of a `cache_limits` request: each segment cap is
/// an optional non-negative integer, absent/`null` meaning unbounded.
fn parse_cache_limits(value: &Value) -> Result<Option<CacheLimits>, WireError> {
    let set = match value.get("set") {
        None | Some(Value::Null) => return Ok(None),
        Some(v @ Value::Obj(_)) => v,
        Some(_) => return Err(WireError::bad_request("field `set` must be an object")),
    };
    Ok(Some(CacheLimits {
        max_decisions: optional_u64(set, "max_decisions")?.map(|n| n as usize),
        max_cq_pairs: optional_u64(set, "max_cq_pairs")?.map(|n| n as usize),
        max_cq_in_program: optional_u64(set, "max_cq_in_program")?.map(|n| n as usize),
    }))
}

/// Parse the `level` field of a `trace` request (default: `debug`, the
/// level at which per-iteration and per-pop detail appears).
fn parse_level(value: &Value) -> Result<MetricsLevel, WireError> {
    match optional_str(value, "level")? {
        None => Ok(MetricsLevel::Debug),
        Some(name) => MetricsLevel::parse(&name).ok_or_else(|| {
            WireError::bad_request(format!(
                "unknown level `{name}` (expected off, counters, debug, or trace)"
            ))
        }),
    }
}

/// Parse the optional `schedule` field of a `trace` request.
fn parse_schedule(value: &Value) -> Result<Option<Schedule>, WireError> {
    match optional_str(value, "schedule")? {
        None => Ok(None),
        Some(name) => match name.as_str() {
            "min_subset" => Ok(Some(Schedule::MinSubset)),
            "fifo" => Ok(Some(Schedule::Fifo)),
            _ => Err(WireError::bad_request(format!(
                "unknown schedule `{name}` (expected min_subset or fifo)"
            ))),
        },
    }
}

fn parse_options(value: &Value) -> Result<RequestOptions, WireError> {
    let options = match value.get("options") {
        None | Some(Value::Null) => return Ok(RequestOptions::default()),
        Some(v @ Value::Obj(_)) => v,
        Some(_) => return Err(WireError::bad_request("field `options` must be an object")),
    };
    let strategy = match optional_str(options, "strategy")? {
        None => None,
        Some(name) => Some(Strategy::parse(&name).ok_or_else(|| {
            WireError::bad_request(format!(
                "unknown strategy `{name}` (expected naive, semi_naive, indexed, magic, or auto)"
            ))
        })?),
    };
    Ok(RequestOptions {
        use_cache: !optional_bool(options, "no_cache")?,
        allow_word_path: !optional_bool(options, "no_word_path")?,
        max_pairs: optional_u64(options, "max_pairs")?.map(|n| n as usize),
        timeout_ms: optional_u64(options, "timeout_ms")?,
        strategy,
        provenance: optional_bool(options, "provenance")?,
    })
}

/// Parse one request object.  `allow_batch` is false for the elements of a
/// batch, making nesting a `bad_request` instead of a recursion hazard.
pub fn parse_request(value: &Value, allow_batch: bool) -> Result<Request, WireError> {
    if !matches!(value, Value::Obj(_)) {
        return Err(WireError::bad_request("request must be a JSON object"));
    }
    let id = request_id(value);
    let op = required_str(value, "op")?;
    let command = match op.as_str() {
        "containment" => Command::Containment {
            program: required_str(value, "program")?,
            goal: required_str(value, "goal")?,
            query: required_str(value, "query")?,
            options: parse_options(value)?,
        },
        "equivalence" => Command::Equivalence {
            program: required_str(value, "program")?,
            goal: required_str(value, "goal")?,
            candidate: required_str(value, "candidate")?,
            options: parse_options(value)?,
        },
        "bounded" => Command::Bounded {
            program: required_str(value, "program")?,
            goal: required_str(value, "goal")?,
            max_depth: optional_u64(value, "max_depth")?.unwrap_or(8) as usize,
            options: parse_options(value)?,
        },
        "optimize" => Command::Optimize {
            program: required_str(value, "program")?,
            goal: required_str(value, "goal")?,
            minimize_bodies: !optional_bool(value, "no_minimize_bodies")?,
            remove_subsumed: !optional_bool(value, "no_remove_subsumed")?,
            inline_nonrecursive: optional_bool(value, "inline_nonrecursive")?,
            options: parse_options(value)?,
        },
        "minimize" => Command::Minimize {
            query: required_str(value, "query")?,
            options: parse_options(value)?,
        },
        "rewrite" => Command::Rewrite {
            program: required_str(value, "program")?,
            goal: required_str(value, "goal")?,
            max_depth: optional_u64(value, "max_depth")?.unwrap_or(8) as usize,
            options: parse_options(value)?,
        },
        "trace" => {
            let max_events = optional_u64(value, "max_events")?.unwrap_or(512) as usize;
            if max_events > MAX_TRACE_EVENTS {
                return Err(WireError::bad_request(format!(
                    "max_events {max_events} exceeds the limit of {MAX_TRACE_EVENTS}"
                )));
            }
            Command::Trace {
                program: required_str(value, "program")?,
                goal: required_str(value, "goal")?,
                query: required_str(value, "query")?,
                level: parse_level(value)?,
                max_events,
                schedule: parse_schedule(value)?,
                options: parse_options(value)?,
            }
        }
        "metrics_text" => Command::MetricsText,
        "batch" => {
            if !allow_batch {
                return Err(WireError::bad_request("batches cannot be nested"));
            }
            let items = value
                .get("requests")
                .and_then(Value::as_arr)
                .ok_or_else(|| WireError::bad_request("missing or non-array field `requests`"))?;
            if items.len() > MAX_BATCH_REQUESTS {
                return Err(WireError::bad_request(format!(
                    "batch has {} requests; at most {MAX_BATCH_REQUESTS} are allowed",
                    items.len()
                )));
            }
            let requests = items
                .iter()
                .map(|item| parse_request(item, false))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(admin) = requests.iter().find(|r| r.command.is_admin()) {
                // Admin verbs are answered on the connection thread; inside
                // a batch they would run on a worker, dodging that
                // guarantee (and `clear_cache` mid-batch would make the
                // batch's own cache counters unreadable).
                return Err(WireError::bad_request(format!(
                    "admin verb `{}` cannot appear inside a batch",
                    admin.command.verb()
                )));
            }
            if let Some(unbatchable) = requests
                .iter()
                .find(|r| matches!(r.command, Command::Trace { .. } | Command::MetricsText))
            {
                // `metrics_text` is answered on the connection thread like
                // the admin verbs; `trace` responses can be enormous, and a
                // batch's single response line must not smuggle an
                // unbounded number of them past the per-line budget.
                return Err(WireError::bad_request(format!(
                    "verb `{}` cannot appear inside a batch",
                    unbatchable.command.verb()
                )));
            }
            Command::Batch {
                requests,
                timeout_ms: optional_u64(value, "timeout_ms")?,
            }
        }
        "stats" => Command::Stats,
        "clear_cache" => Command::ClearCache,
        "cache_limits" => Command::CacheLimits {
            set: parse_cache_limits(value)?,
        },
        "save_cache" => Command::SaveCache {
            path: optional_str(value, "path")?,
        },
        "load_cache" => Command::LoadCache {
            path: optional_str(value, "path")?,
        },
        other => {
            return Err(WireError::bad_request(format!("unknown op `{other}`")));
        }
    };
    Ok(Request { id, command })
}

fn id_field(id: &Option<Value>) -> Value {
    id.clone().unwrap_or(Value::Null)
}

/// Build a success response.
pub fn ok_response(id: &Option<Value>, verb: &str, result: Value) -> Value {
    obj(vec![
        ("id", id_field(id)),
        ("ok", Value::Bool(true)),
        ("verb", Value::str(verb)),
        ("result", result),
    ])
}

/// Build an error response.
pub fn error_response(id: &Option<Value>, error: &WireError) -> Value {
    obj(vec![
        ("id", id_field(id)),
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![
                ("code", Value::str(error.code)),
                ("message", Value::str(&error.message)),
            ]),
        ),
    ])
}

// ---- Request builders (used by `server::client`, the tests, and the bench).

/// Build a `containment` request value.
pub fn containment_request(program: &str, goal: &str, query: &str) -> Value {
    obj(vec![
        ("op", Value::str("containment")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
        ("query", Value::str(query)),
    ])
}

/// Build an `equivalence` request value.
pub fn equivalence_request(program: &str, goal: &str, candidate: &str) -> Value {
    obj(vec![
        ("op", Value::str("equivalence")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
        ("candidate", Value::str(candidate)),
    ])
}

/// Build a `bounded` request value.
pub fn bounded_request(program: &str, goal: &str, max_depth: usize) -> Value {
    obj(vec![
        ("op", Value::str("bounded")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
        ("max_depth", Value::num(max_depth as f64)),
    ])
}

/// Build an `optimize` request value.
pub fn optimize_request(program: &str, goal: &str) -> Value {
    obj(vec![
        ("op", Value::str("optimize")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
    ])
}

/// Build a `minimize` request value.
pub fn minimize_request(query: &str) -> Value {
    obj(vec![
        ("op", Value::str("minimize")),
        ("query", Value::str(query)),
    ])
}

/// Build a `rewrite` request value.
pub fn rewrite_request(program: &str, goal: &str, max_depth: usize) -> Value {
    obj(vec![
        ("op", Value::str("rewrite")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
        ("max_depth", Value::num(max_depth as f64)),
    ])
}

/// Build a `trace` request value at an explicit level.
pub fn trace_request(program: &str, goal: &str, query: &str, level: &str) -> Value {
    obj(vec![
        ("op", Value::str("trace")),
        ("program", Value::str(program)),
        ("goal", Value::str(goal)),
        ("query", Value::str(query)),
        ("level", Value::str(level)),
    ])
}

/// Build a `metrics_text` request value.
pub fn metrics_text_request() -> Value {
    obj(vec![("op", Value::str("metrics_text"))])
}

/// Build a `batch` request value from sub-request values.
pub fn batch_request(requests: Vec<Value>) -> Value {
    obj(vec![
        ("op", Value::str("batch")),
        ("requests", Value::Arr(requests)),
    ])
}

/// Build a `stats` request value.
pub fn stats_request() -> Value {
    obj(vec![("op", Value::str("stats"))])
}

/// Build a `clear_cache` request value.
pub fn clear_cache_request() -> Value {
    obj(vec![("op", Value::str("clear_cache"))])
}

/// The one wire rendering of [`CacheLimits`]: a three-field object with
/// `null` for unbounded caps.  Shared by the `cache_limits` request
/// builder, the `cache_limits` response, and the `stats` verb's `limits`
/// block, so the shape cannot drift between the three surfaces.
pub fn cache_limits_json(limits: CacheLimits) -> Value {
    let cap = |c: Option<usize>| c.map_or(Value::Null, |n| Value::num(n as f64));
    obj(vec![
        ("max_decisions", cap(limits.max_decisions)),
        ("max_cq_pairs", cap(limits.max_cq_pairs)),
        ("max_cq_in_program", cap(limits.max_cq_in_program)),
    ])
}

/// Build a `cache_limits` request value: a pure read with `set = None`, an
/// install-and-enforce with `set = Some(limits)`.
pub fn cache_limits_request(set: Option<CacheLimits>) -> Value {
    let mut fields = vec![("op", Value::str("cache_limits"))];
    if let Some(limits) = set {
        fields.push(("set", cache_limits_json(limits)));
    }
    obj(fields)
}

/// Build a `save_cache` request value (`None`: the server's default path).
pub fn save_cache_request(path: Option<&str>) -> Value {
    let mut fields = vec![("op", Value::str("save_cache"))];
    if let Some(path) = path {
        fields.push(("path", Value::str(path)));
    }
    obj(fields)
}

/// Build a `load_cache` request value (`None`: the server's default path).
pub fn load_cache_request(path: Option<&str>) -> Value {
    let mut fields = vec![("op", Value::str("load_cache"))];
    if let Some(path) = path {
        fields.push(("path", Value::str(path)));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_every_verb_with_defaults() {
        let v = parse(
            r#"{"op":"containment","program":"p(X) :- e(X, X).","goal":"p","query":"q(X) :- e(X, X)."}"#,
        )
        .unwrap();
        let req = parse_request(&v, true).unwrap();
        assert_eq!(req.command.verb(), "containment");
        assert!(req.id.is_none());
        match req.command {
            Command::Containment { options, .. } => {
                assert_eq!(options, RequestOptions::default());
                assert!(options.use_cache);
            }
            other => panic!("wrong command {other:?}"),
        }
        let v = parse(r#"{"op":"bounded","id":"b-1","program":"p(X) :- e(X, X).","goal":"p"}"#)
            .unwrap();
        let req = parse_request(&v, true).unwrap();
        assert_eq!(req.id, Some(Value::str("b-1")));
        assert!(matches!(req.command, Command::Bounded { max_depth: 8, .. }));
        assert!(matches!(
            parse_request(&parse(r#"{"op":"stats"}"#).unwrap(), true)
                .unwrap()
                .command,
            Command::Stats
        ));
    }

    #[test]
    fn options_invert_the_wire_flags() {
        let v = parse(
            r#"{"op":"equivalence","program":"p.","goal":"p","candidate":"p.",
                "options":{"no_cache":true,"no_word_path":true,"max_pairs":100,"timeout_ms":50}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Equivalence { options, .. } => {
                assert!(!options.use_cache);
                assert!(!options.allow_word_path);
                assert_eq!(options.max_pairs, Some(100));
                assert_eq!(options.timeout_ms, Some(50));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn strategy_option_parses_and_rejects_unknown_names() {
        let v = parse(
            r#"{"op":"equivalence","program":"p.","goal":"p","candidate":"p.",
                "options":{"strategy":"magic"}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Equivalence { options, .. } => {
                assert_eq!(options.strategy, Some(Strategy::Magic));
            }
            other => panic!("wrong command {other:?}"),
        }
        // The hyphenated alias is accepted; garbage is a bad_request.
        let v = parse(
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.",
                "options":{"strategy":"semi-naive"}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Containment { options, .. } => {
                assert_eq!(options.strategy, Some(Strategy::SemiNaive));
            }
            other => panic!("wrong command {other:?}"),
        }
        let v = parse(
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.",
                "options":{"strategy":"auto"}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Containment { options, .. } => {
                assert_eq!(options.strategy, Some(Strategy::Auto));
            }
            other => panic!("wrong command {other:?}"),
        }
        let v = parse(
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.",
                "options":{"strategy":"voodoo"}}"#,
        )
        .unwrap();
        let err = parse_request(&v, true).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.message.contains("voodoo"));
    }

    #[test]
    fn minimize_and_rewrite_parse_and_stay_batchable() {
        let v = parse(r#"{"op":"minimize","query":"q(X) :- e(X, Y), e(X, Z)."}"#).unwrap();
        let req = parse_request(&v, true).unwrap();
        assert_eq!(req.command.verb(), "minimize");
        assert!(!req.command.is_admin());
        match req.command {
            Command::Minimize { options, .. } => assert_eq!(options, RequestOptions::default()),
            other => panic!("wrong command {other:?}"),
        }
        // A missing `query` is a bad_request.
        let err = parse_request(&parse(r#"{"op":"minimize"}"#).unwrap(), true).unwrap_err();
        assert_eq!(err.code, "bad_request");

        let v = parse(
            r#"{"op":"rewrite","program":"p(X) :- e(X, X).","goal":"p","max_depth":3,
                "options":{"timeout_ms":90}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Rewrite {
                max_depth, options, ..
            } => {
                assert_eq!(max_depth, 3);
                assert_eq!(options.timeout_ms, Some(90));
            }
            other => panic!("wrong command {other:?}"),
        }
        // `max_depth` defaults to 8, matching `bounded`.
        let v = parse(r#"{"op":"rewrite","program":"p(X) :- e(X, X).","goal":"p"}"#).unwrap();
        assert!(matches!(
            parse_request(&v, true).unwrap().command,
            Command::Rewrite { max_depth: 8, .. }
        ));

        // Both verbs are batchable (neither admin nor oversized-response).
        let batched = batch_request(vec![
            minimize_request("q(X) :- e(X, Y)."),
            rewrite_request("p(X) :- e(X, X).", "p", 4),
        ]);
        match parse_request(&batched, true).unwrap().command {
            Command::Batch { requests, .. } => assert_eq!(requests.len(), 2),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn provenance_option_parses_and_defaults_off() {
        let v = parse(
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.",
                "options":{"provenance":true}}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Containment { options, .. } => assert!(options.provenance),
            other => panic!("wrong command {other:?}"),
        }
        let v = parse(r#"{"op":"containment","program":"p.","goal":"p","query":"q."}"#).unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Containment { options, .. } => assert!(!options.provenance),
            other => panic!("wrong command {other:?}"),
        }
        // Non-boolean provenance is rejected.
        let v = parse(
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.",
                "options":{"provenance":"yes"}}"#,
        )
        .unwrap();
        assert_eq!(parse_request(&v, true).unwrap_err().code, "bad_request");
    }

    #[test]
    fn trace_parses_levels_and_refuses_batching() {
        let v = parse(
            r#"{"op":"trace","program":"p(X) :- e(X, X).","goal":"p","query":"q(X) :- e(X, X).","level":"trace","max_events":9,"schedule":"fifo"}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Trace {
                level,
                max_events,
                schedule,
                ..
            } => {
                assert_eq!(level, MetricsLevel::Trace);
                assert_eq!(max_events, 9);
                assert_eq!(schedule, Some(Schedule::Fifo));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: debug level, 512-event budget, engine-default schedule.
        let v = parse(r#"{"op":"trace","program":"p.","goal":"p","query":"q."}"#).unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Trace {
                level,
                max_events,
                schedule,
                ..
            } => {
                assert_eq!(level, MetricsLevel::Debug);
                assert_eq!(max_events, 512);
                assert_eq!(schedule, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Unknown level / schedule / oversized budget are bad_request.
        for bad in [
            r#"{"op":"trace","program":"p.","goal":"p","query":"q.","level":"verbose"}"#,
            r#"{"op":"trace","program":"p.","goal":"p","query":"q.","schedule":"lifo"}"#,
        ] {
            let err = parse_request(&parse(bad).unwrap(), true).unwrap_err();
            assert_eq!(err.code, "bad_request", "for {bad}");
        }
        let oversized = format!(
            r#"{{"op":"trace","program":"p.","goal":"p","query":"q.","max_events":{}}}"#,
            MAX_TRACE_EVENTS + 1
        );
        let err = parse_request(&parse(&oversized).unwrap(), true).unwrap_err();
        assert_eq!(err.code, "bad_request");
        // Neither observability verb may hide inside a batch.
        for sub in [
            trace_request("p.", "p", "q.", "debug"),
            metrics_text_request(),
        ] {
            let err = parse_request(&batch_request(vec![sub]), true).unwrap_err();
            assert_eq!(err.code, "bad_request");
            assert!(err.message.contains("batch"), "{}", err.message);
        }
    }

    #[test]
    fn batch_parses_and_refuses_nesting() {
        let v = parse(
            r#"{"op":"batch","requests":[{"op":"stats"},{"op":"optimize","program":"p(X) :- e(X, X).","goal":"p"}]}"#,
        )
        .unwrap();
        match parse_request(&v, true).unwrap().command {
            Command::Batch { requests, .. } => assert_eq!(requests.len(), 2),
            other => panic!("wrong command {other:?}"),
        }
        let nested = parse(r#"{"op":"batch","requests":[{"op":"batch","requests":[]}]}"#).unwrap();
        let err = parse_request(&nested, true).unwrap_err();
        assert_eq!(err.code, "bad_request");
        // Oversized batches are rejected before any sub-request parses.
        let oversized = batch_request(vec![stats_request(); MAX_BATCH_REQUESTS + 1]);
        let err = parse_request(&oversized, true).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.message.contains("at most"));
        // A batch-level timeout is picked up by `timeout_ms()`.
        let timed = parse(r#"{"op":"batch","requests":[],"timeout_ms":250}"#).unwrap();
        assert_eq!(
            parse_request(&timed, true).unwrap().command.timeout_ms(),
            Some(250)
        );
    }

    #[test]
    fn admin_verbs_parse_and_refuse_batching() {
        let req = parse_request(&parse(r#"{"op":"clear_cache"}"#).unwrap(), true).unwrap();
        assert!(matches!(req.command, Command::ClearCache));
        assert!(req.command.is_admin());
        assert_eq!(req.command.timeout_ms(), None);

        let get = parse_request(&parse(r#"{"op":"cache_limits"}"#).unwrap(), true).unwrap();
        assert!(matches!(get.command, Command::CacheLimits { set: None }));
        let set = parse_request(
            &parse(r#"{"op":"cache_limits","set":{"max_decisions":64,"max_cq_pairs":null}}"#)
                .unwrap(),
            true,
        )
        .unwrap();
        match set.command {
            Command::CacheLimits { set: Some(limits) } => {
                assert_eq!(limits.max_decisions, Some(64));
                assert_eq!(limits.max_cq_pairs, None);
                assert_eq!(limits.max_cq_in_program, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // The builder round-trips through the parser.
        let built = cache_limits_request(Some(CacheLimits {
            max_decisions: Some(8),
            max_cq_pairs: Some(9),
            max_cq_in_program: None,
        }));
        match parse_request(&built, true).unwrap().command {
            Command::CacheLimits { set: Some(limits) } => {
                assert_eq!(limits.max_decisions, Some(8));
                assert_eq!(limits.max_cq_pairs, Some(9));
            }
            other => panic!("wrong command {other:?}"),
        }

        let save = parse_request(&save_cache_request(Some("/tmp/x.nrdc")), true).unwrap();
        assert!(matches!(save.command, Command::SaveCache { path: Some(p) } if p == "/tmp/x.nrdc"));
        let load = parse_request(&load_cache_request(None), true).unwrap();
        assert!(matches!(load.command, Command::LoadCache { path: None }));

        // Admin verbs cannot hide inside a batch.
        let batched = batch_request(vec![stats_request(), clear_cache_request()]);
        let err = parse_request(&batched, true).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.message.contains("clear_cache"));
        // Malformed `set` payloads are rejected.
        let err = parse_request(
            &parse(r#"{"op":"cache_limits","set":{"max_decisions":"lots"}}"#).unwrap(),
            true,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn malformed_requests_are_bad_request_with_echoed_id() {
        for bad in [
            r#"{"program":"p."}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"containment","program":7,"goal":"p","query":"q."}"#,
            r#"{"op":"bounded","program":"p.","goal":"p","max_depth":-1}"#,
            r#"{"op":"containment","program":"p.","goal":"p","query":"q.","options":{"max_pairs":"many"}}"#,
            r#"[1,2,3]"#,
        ] {
            let v = parse(bad).unwrap();
            let err = parse_request(&v, true).unwrap_err();
            assert_eq!(err.code, "bad_request", "for {bad}");
        }
        let v = parse(r#"{"op":"nope","id":42}"#).unwrap();
        assert_eq!(request_id(&v), Some(Value::num(42.0)));
        let rendered = error_response(&request_id(&v), &WireError::bad_request("x")).render();
        assert!(rendered.starts_with(r#"{"id":42,"ok":false"#));
    }
}
