//! Execution of the cache-admin verbs: `clear_cache`, `cache_limits`,
//! `save_cache`, `load_cache`.
//!
//! These run **on the connection thread**, never on the worker pool, for
//! the same reason `stats` does: an operator managing an overloaded server
//! (shrinking the cache, persisting it before a restart) must not queue
//! behind the very decisions that are overloading it.  All four verbs are
//! cheap relative to a decision — `save_cache`/`load_cache` do file I/O,
//! but only on the one connection issuing them.
//!
//! Snapshot files use the versioned format of
//! [`nonrec_equivalence::snapshot`].  Persistence is **opt-in and
//! confined**: without `--cache-file`, `save_cache`/`load_cache` are
//! refused outright; with it, a path-less request uses the configured
//! file, and a request-supplied `path` must be a bare file name, resolved
//! **next to** the configured file.  A socket client therefore can only
//! ever touch snapshot files inside the directory the operator designated
//! — never arbitrary filesystem paths (the wire protocol would otherwise
//! be a file-write/read primitive running as the server user).

use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nonrec_equivalence::cache::{CacheSizes, DecisionCache};

use crate::json::{obj, Value};
use crate::protocol::{Command, WireError};

/// Admin-verb configuration: the default snapshot path (from
/// `--cache-file`), used when a `save_cache`/`load_cache` request names no
/// path of its own.
#[derive(Clone, Debug, Default)]
pub struct AdminContext {
    /// Default snapshot path; `None` means path-less save/load requests
    /// are answered `bad_request`.
    pub cache_file: Option<PathBuf>,
}

fn sizes_json(sizes: CacheSizes) -> Value {
    obj(vec![
        ("entries", Value::num(sizes.total() as f64)),
        ("decisions", Value::num(sizes.decisions as f64)),
        ("cq_pairs", Value::num(sizes.cq_pairs as f64)),
        ("cq_in_program", Value::num(sizes.cq_in_program as f64)),
    ])
}

/// Resolve the target of a `save_cache`/`load_cache` request.  Persistence
/// requires `--cache-file`; a request-supplied `path` must be a bare file
/// name (one normal component — no directories, no `..`, not absolute) and
/// resolves into the configured file's directory.
fn resolve_path(requested: &Option<String>, context: &AdminContext) -> Result<PathBuf, WireError> {
    let default = context.cache_file.as_deref().ok_or_else(|| {
        WireError::bad_request(
            "snapshot persistence is disabled: the server was started without --cache-file",
        )
    })?;
    match requested {
        None => Ok(default.to_path_buf()),
        Some(name) => {
            let mut components = Path::new(name).components();
            let bare = matches!(
                (components.next(), components.next()),
                (Some(Component::Normal(_)), None)
            );
            if !bare {
                return Err(WireError::bad_request(format!(
                    "`path` must be a bare file name (resolved next to the configured \
                     --cache-file), not `{name}`"
                )));
            }
            Ok(default.parent().unwrap_or(Path::new(".")).join(name))
        }
    }
}

fn save_cache(cache: &DecisionCache, path: &Path) -> Result<Value, WireError> {
    let (bytes, saved) = cache.snapshot();
    // Write-then-rename so a crash mid-write cannot leave a half snapshot
    // under the real name (the checksum would catch it, but a warm start
    // should not be lost to a torn write either).  The temporary name is
    // unique per process *and* per call: concurrent saves to the same
    // target must not interleave writes into one shared `.tmp` file, or
    // the rename would publish exactly the torn snapshot the scheme
    // exists to prevent (last complete rename wins instead).
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_file_name(format!(
        "{}.{}.{}.tmp",
        path.file_name().unwrap_or_default().to_string_lossy(),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&tmp, &bytes)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| WireError::new("io_error", format!("writing {}: {e}", path.display())))?;
    Ok(obj(vec![
        ("path", Value::str(path.display().to_string())),
        ("bytes", Value::num(bytes.len() as f64)),
        // The counts of what the snapshot *contains* — on a live cache,
        // `cache.sizes()` could already disagree with the written file.
        ("saved", sizes_json(saved)),
    ]))
}

fn load_cache(cache: &DecisionCache, path: &Path) -> Result<Value, WireError> {
    let bytes = std::fs::read(path)
        .map_err(|e| WireError::new("io_error", format!("reading {}: {e}", path.display())))?;
    let added = cache
        .load_snapshot_bytes(&bytes)
        .map_err(|e| WireError::new(e.code(), format!("loading {}: {e}", path.display())))?;
    Ok(obj(vec![
        ("path", Value::str(path.display().to_string())),
        ("loaded", sizes_json(added)),
        ("entries", Value::num(cache.len() as f64)),
    ]))
}

/// Execute an admin command against the shared cache, producing the
/// `result` payload.  Returns `None` for non-admin commands, so the caller
/// can fall through to the pool.
pub fn execute_admin(
    command: &Command,
    context: &AdminContext,
) -> Option<Result<Value, WireError>> {
    let cache = DecisionCache::global();
    Some(match command {
        Command::ClearCache => {
            // "Forget everything" covers the text-level memos too: a
            // repeated request after a clear must recompute, not replay.
            let memoised = crate::memo::ResponseMemo::global().len();
            crate::memo::ResponseMemo::global().clear();
            let lines = crate::memo::LineMemo::global().len();
            crate::memo::LineMemo::global().clear();
            let dropped = cache.clear();
            Ok(obj(vec![
                ("dropped", sizes_json(dropped)),
                ("dropped_memo", Value::num(memoised as f64)),
                ("dropped_memo_lines", Value::num(lines as f64)),
            ]))
        }
        Command::CacheLimits { set } => {
            if let Some(limits) = set {
                cache.set_limits(*limits);
            }
            Ok(obj(vec![
                ("limits", crate::protocol::cache_limits_json(cache.limits())),
                ("sizes", sizes_json(cache.sizes())),
                ("evictions", Value::num(cache.stats().evictions() as f64)),
            ]))
        }
        Command::SaveCache { path } => {
            resolve_path(path, context).and_then(|path| save_cache(cache, &path))
        }
        Command::LoadCache { path } => {
            resolve_path(path, context).and_then(|path| load_cache(cache, &path))
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nonrec-admin-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn persistence_without_cache_file_is_refused() {
        for command in [
            Command::SaveCache { path: None },
            Command::SaveCache {
                path: Some("snap.nrdc".into()),
            },
            Command::LoadCache { path: None },
        ] {
            let err = execute_admin(&command, &AdminContext::default())
                .unwrap()
                .unwrap_err();
            assert_eq!(err.code, "bad_request");
            assert!(err.message.contains("--cache-file"));
        }
    }

    #[test]
    fn request_paths_are_confined_to_the_cache_file_directory() {
        let context = AdminContext {
            cache_file: Some(tmp_path("confined.nrdc")),
        };
        for escape in ["../escape.nrdc", "/etc/passwd", "a/b.nrdc", ".."] {
            let err = execute_admin(
                &Command::SaveCache {
                    path: Some(escape.to_string()),
                },
                &context,
            )
            .unwrap()
            .unwrap_err();
            assert_eq!(err.code, "bad_request", "for {escape}");
            assert!(err.message.contains("bare file name"), "for {escape}");
        }
        // A bare name lands next to the configured file.
        let name = format!("confined-sibling-{}.nrdc", std::process::id());
        let sibling = std::env::temp_dir().join(&name);
        let _ = std::fs::remove_file(&sibling);
        let result = execute_admin(
            &Command::SaveCache {
                path: Some(name.clone()),
            },
            &context,
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            result.get("path").unwrap().as_str(),
            Some(sibling.display().to_string().as_str())
        );
        assert!(sibling.exists());
        let _ = std::fs::remove_file(&sibling);
    }

    #[test]
    fn load_failures_carry_stable_codes() {
        let missing = tmp_path("missing.nrdc");
        let _ = std::fs::remove_file(&missing);
        let context = AdminContext {
            cache_file: Some(missing),
        };
        let err = execute_admin(&Command::LoadCache { path: None }, &context)
            .unwrap()
            .unwrap_err();
        assert_eq!(err.code, "io_error");

        let garbage = tmp_path("garbage.nrdc");
        std::fs::write(&garbage, b"not a snapshot").unwrap();
        let context = AdminContext {
            cache_file: Some(garbage.clone()),
        };
        let err = execute_admin(&Command::LoadCache { path: None }, &context)
            .unwrap()
            .unwrap_err();
        assert_eq!(err.code, "snapshot_error");
        let _ = std::fs::remove_file(&garbage);
    }

    #[test]
    fn save_uses_the_configured_default_path() {
        let path = tmp_path("default.nrdc");
        let context = AdminContext {
            cache_file: Some(path.clone()),
        };
        let result = execute_admin(&Command::SaveCache { path: None }, &context)
            .unwrap()
            .unwrap();
        assert_eq!(
            result.get("path").unwrap().as_str(),
            Some(path.display().to_string().as_str())
        );
        assert!(path.exists());
        // And loads back through the same default.
        let loaded = execute_admin(&Command::LoadCache { path: None }, &context)
            .unwrap()
            .unwrap();
        assert!(loaded.get("loaded").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_admin_commands_fall_through() {
        assert!(execute_admin(&Command::Stats, &AdminContext::default()).is_none());
    }
}
