//! `nonrec-route`: a sharding front end over N `nonrec-serve` backends.
//!
//! One decision cache per process is the scaling unit — so to scale out,
//! run N `nonrec-serve` shards (each with its own `--cache-file`) and put
//! this router in front.  The router speaks the same pipelined
//! line-delimited JSON protocol on both sides:
//!
//! * each client request's **program** is hashed to a shard via
//!   [`nonrec_equivalence::ProgramKey`] — structurally equivalent programs
//!   land on the same shard, so each shard's cache (and snapshot file)
//!   stays hot for its own keyspace slice across fleet restarts;
//! * requests are forwarded over one **persistent pipelined connection**
//!   per backend, shared by every client, with the request `id` rewritten
//!   to a router-global token and restored on the way back (responses
//!   merge by id, so out-of-order completion is fine);
//! * when a backend dies, its in-flight requests are **requeued** to a
//!   live shard — the client sees a slower answer, not a lost one.  Only
//!   when *no* shard can take a request does the router answer with its
//!   own stable `shard_unavailable` code; a backend's `busy` is forwarded
//!   verbatim, so clients can tell which tier to back off from.
//!
//! The router answers `stats` itself (router + per-shard counters) and
//! rejects the cache-admin verbs with `bad_request`: admin is per-shard
//! state, so operators address shards directly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use datalog::parser::parse_program;
use nonrec_equivalence::ProgramKey;

use crate::json::{self, obj, Value};
use crate::protocol::{error_response, ok_response, WireError};
use crate::server::{read_line_limited, write_loop, LineRead, MAX_LINE_BYTES};

/// The router's own stable error code: no shard could take the request.
/// Distinct from `busy` (a *backend's* queue is full — forwarded verbatim):
/// `busy` means back off and retry the same tier, `shard_unavailable` means
/// the fleet itself is degraded.
pub const SHARD_UNAVAILABLE: &str = "shard_unavailable";

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend `nonrec-serve` addresses, one per shard.  Shard numbering
    /// follows this order.
    pub backends: Vec<String>,
    /// Minimum wait between reconnection attempts to a dead backend, so a
    /// downed shard costs one failed `connect` per cooldown instead of one
    /// per request.
    pub reconnect_cooldown: Duration,
}

impl RouterConfig {
    /// A config for the given backends with the default cooldown.
    pub fn new(backends: Vec<String>) -> RouterConfig {
        RouterConfig {
            backends,
            reconnect_cooldown: Duration::from_millis(250),
        }
    }
}

/// A request forwarded to a backend and not yet answered.
struct Pending {
    /// Where the (id-restored) response goes: the owning client
    /// connection's writer channel.
    client: mpsc::Sender<String>,
    /// The client's original `id`, restored on the way back.
    original_id: Option<Value>,
    /// The full request with the router id installed — kept so a backend
    /// death can replay it on another shard.
    request: Value,
    /// Shard the request is currently in flight on.
    shard: usize,
    /// Connection generation it was written on (`u64::MAX` until written):
    /// a death sweep requeues exactly the entries written on the dead
    /// connection, never ones already re-sent on its successor.
    generation: u64,
    /// Dispatch attempts so far; bounded by the shard count so two flapping
    /// backends cannot bounce one request forever.
    attempts: usize,
}

/// One backend connection slot.
#[derive(Default)]
struct Slot {
    /// Write half of the persistent connection (`None`: not connected).
    writer: Option<TcpStream>,
    /// Bumped on every successful connect; the matching reader thread and
    /// every in-flight entry carry the generation they belong to.
    generation: u64,
    /// Last connect attempt, for the reconnect cooldown.
    last_attempt: Option<Instant>,
}

struct Backend {
    addr: String,
    slot: Mutex<Slot>,
}

#[derive(Clone, Default)]
struct ShardCounters {
    forwarded: u64,
    replies: u64,
    busy: u64,
    requeued: u64,
    disconnects: u64,
}

#[derive(Default)]
struct Counters {
    requests: u64,
    invalid_json: u64,
    bad_request: u64,
    unavailable: u64,
    shards: Vec<ShardCounters>,
}

struct Shared {
    backends: Vec<Backend>,
    pending: Mutex<HashMap<u64, Pending>>,
    next_id: AtomicU64,
    round_robin: AtomicUsize,
    cooldown: Duration,
    counters: Mutex<Counters>,
}

// Lock order: a thread holding `pending` never takes a `slot` lock (the
// reverse — slot, then pending — happens in `send_on_shard`).  `counters`
// is a leaf: taken last, never held across another acquisition.
impl Shared {
    fn pending(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Pending>> {
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn counters(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn slot(&self, shard: usize) -> std::sync::MutexGuard<'_, Slot> {
        self.backends[shard]
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A bound router (see the module docs for the protocol).
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Router {
    /// Bind to `addr` (use port 0 for an OS-assigned port).  Backends are
    /// connected lazily, on first demand — the router comes up even while
    /// the fleet is still starting.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> std::io::Result<Router> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let shards = config.backends.len();
        Ok(Router {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(Shared {
                backends: config
                    .backends
                    .into_iter()
                    .map(|addr| Backend {
                        addr,
                        slot: Mutex::new(Slot::default()),
                    })
                    .collect(),
                pending: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                round_robin: AtomicUsize::new(0),
                cooldown: config.reconnect_cooldown,
                counters: Mutex::new(Counters {
                    shards: vec![ShardCounters::default(); shards],
                    ..Counters::default()
                }),
            }),
        })
    }

    /// The bound address (to recover the OS-assigned port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept client connections forever, one thread per connection.  Only
    /// returns on an accept error.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let (stream, _peer) = self.listener.accept()?;
            stream.set_nodelay(true)?;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("nonrec-route-conn".to_string())
                .spawn(move || {
                    let _ = handle_client(stream, &shared);
                })
                .expect("spawn router connection thread");
        }
    }
}

/// FNV-1a over the *rendered canonical forms* of the program's rule keys.
///
/// [`ProgramKey`]'s derived `Hash` goes through interner indices, which
/// depend on interning order and so differ between processes; hashing the
/// rendered canonical queries instead gives every router process — across
/// restarts — the same shard assignment, which is what keeps a shard's
/// snapshot file hot for its slice of the keyspace.
fn route_hash(program_text: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let eat = |hash: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *hash = (*hash ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    match parse_program(program_text) {
        Ok(program) => {
            for key in ProgramKey::of(&program).rule_keys() {
                eat(&mut hash, key.as_query().to_string().as_bytes());
                eat(&mut hash, b"\n");
            }
        }
        // Unparseable programs still get a deterministic shard; the backend
        // will answer `parse_error` with full details.
        Err(_) => eat(&mut hash, program_text.as_bytes()),
    }
    hash
}

/// The program text that decides the shard: a single request's `program`,
/// or the first program-bearing item of a batch (a batch stays on one
/// shard so its response remains a single frame).
fn route_text(value: &Value) -> Option<&str> {
    if let Some(text) = value.get("program").and_then(Value::as_str) {
        return Some(text);
    }
    value
        .get("requests")
        .and_then(Value::as_arr)
        .and_then(|items| {
            items
                .iter()
                .find_map(|item| item.get("program").and_then(Value::as_str))
        })
}

/// Replace (or insert) the request's `id` field, returning the old value.
fn swap_id(value: &mut Value, new_id: Value) -> Option<Value> {
    let Value::Obj(fields) = value else {
        return None;
    };
    if let Some(slot) = fields.iter_mut().find(|(key, _)| key == "id") {
        return Some(std::mem::replace(&mut slot.1, new_id));
    }
    fields.push(("id".to_string(), new_id));
    None
}

const ADMIN_OPS: [&str; 4] = ["clear_cache", "cache_limits", "save_cache", "load_cache"];

fn handle_client(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let (reply, responses) = mpsc::channel::<String>();
    let writer_alive = AtomicBool::new(true);
    std::thread::scope(|scope| {
        let alive = &writer_alive;
        let writer = scope.spawn(move || write_loop(stream, &responses, alive));
        let read_result = client_read_loop(&mut reader, &reply, &writer_alive, shared);
        drop(reply);
        // In-flight entries owned by this client: their responses will find
        // a disconnected channel and be dropped, which is correct — the
        // client is gone.
        let write_result = writer.join().expect("router writer thread never panics");
        read_result.and(write_result)
    })
}

fn client_read_loop(
    reader: &mut impl BufRead,
    reply: &mpsc::Sender<String>,
    writer_alive: &AtomicBool,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    loop {
        if !writer_alive.load(Ordering::Relaxed) {
            return Ok(());
        }
        let line = match read_line_limited(reader, MAX_LINE_BYTES)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLongResynced => {
                shared.counters().bad_request += 1;
                let _ = reply.send(
                    error_response(
                        &None,
                        &WireError::bad_request(format!(
                            "request line exceeds the size limit; the line was discarded \
                             (limit {MAX_LINE_BYTES} bytes)"
                        )),
                    )
                    .render(),
                );
                continue;
            }
            LineRead::TooLongAbandoned => {
                let _ = reply.send(
                    error_response(
                        &None,
                        &WireError::bad_request(format!(
                            "request line exceeds the size limit with no terminator; \
                             closing the connection (limit {MAX_LINE_BYTES} bytes)"
                        )),
                    )
                    .render(),
                );
                return Ok(());
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        route_line(&line, reply, shared);
    }
}

/// Route one request line: answer `stats` and malformed input locally,
/// reject admin verbs, forward everything else to a shard.
fn route_line(line: &str, reply: &mpsc::Sender<String>, shared: &Arc<Shared>) {
    shared.counters().requests += 1;
    let mut value = match json::parse(line) {
        Ok(value) => value,
        Err(e) => {
            shared.counters().invalid_json += 1;
            let _ = reply.send(
                error_response(&None, &WireError::new("invalid_json", e.to_string())).render(),
            );
            return;
        }
    };
    let id = crate::protocol::request_id(&value);
    let Some(op) = value.get("op").and_then(Value::as_str) else {
        shared.counters().bad_request += 1;
        let _ = reply.send(
            error_response(
                &id,
                &WireError::bad_request("missing or non-string field `op`"),
            )
            .render(),
        );
        return;
    };
    if op == "stats" {
        let _ = reply.send(ok_response(&id, "stats", stats_json(shared)).render());
        return;
    }
    if ADMIN_OPS.contains(&op) {
        shared.counters().bad_request += 1;
        let _ = reply.send(
            error_response(
                &id,
                &WireError::bad_request(format!(
                    "`{op}` is per-shard state; address the shard's nonrec-serve directly"
                )),
            )
            .render(),
        );
        return;
    }
    let shard = match route_text(&value) {
        Some(text) => (route_hash(text) % shared.backends.len() as u64) as usize,
        // Keyless requests (nothing program-bearing) round-robin: any shard
        // can answer them, so spread the load.
        None => shared.round_robin.fetch_add(1, Ordering::Relaxed) % shared.backends.len(),
    };
    let router_id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let original_id = swap_id(&mut value, Value::num(router_id as f64));
    dispatch(
        shared,
        router_id,
        Pending {
            client: reply.clone(),
            original_id,
            request: value,
            shard,
            generation: u64::MAX,
            attempts: 0,
        },
    );
}

/// Try to forward `pending`, starting at its preferred shard and walking
/// the ring.  Answers `shard_unavailable` when every shard refuses.
fn dispatch(shared: &Arc<Shared>, router_id: u64, mut pending: Pending) {
    let shards = shared.backends.len();
    if pending.attempts > shards {
        // Bounced around the whole ring already (backends flapping):
        // answering beats bouncing forever.
        answer_unavailable(shared, &pending);
        return;
    }
    pending.attempts += 1;
    let start = pending.shard;
    let mut line = pending.request.render();
    line.push('\n');
    for offset in 0..shards {
        let shard = (start + offset) % shards;
        // The entry must be in the table *before* the write: the backend's
        // response can race back before `send_on_shard` returns.
        shared.pending().insert(router_id, pending);
        match send_on_shard(shared, shard, router_id, &line) {
            Ok(()) => {
                shared.counters().shards[shard].forwarded += 1;
                return;
            }
            Err(()) => {
                match shared.pending().remove(&router_id) {
                    // Still ours: try the next shard.
                    Some(entry) => pending = entry,
                    // A death sweep got there first and re-owns the entry.
                    None => return,
                }
            }
        }
    }
    answer_unavailable(shared, &pending);
}

fn answer_unavailable(shared: &Arc<Shared>, pending: &Pending) {
    shared.counters().unavailable += 1;
    let _ = pending.client.send(
        error_response(
            &pending.original_id,
            &WireError::new(
                SHARD_UNAVAILABLE,
                format!(
                    "no shard can take this request ({} configured)",
                    shared.backends.len()
                ),
            ),
        )
        .render(),
    );
}

/// Write one framed request on a shard's persistent connection, connecting
/// (and spawning the connection's reader thread) if necessary.  On a write
/// failure the slot is cleared and the generation swept, so every entry
/// written on the dead connection — including this one — is requeued
/// exactly once.
fn send_on_shard(shared: &Arc<Shared>, shard: usize, router_id: u64, line: &str) -> Result<(), ()> {
    let mut slot = shared.slot(shard);
    if slot.writer.is_none() {
        connect_backend(shared, shard, &mut slot)?;
    }
    let generation = slot.generation;
    // Stamp the entry with the generation it is about to be written on,
    // while holding the slot lock so the stamp and the write cannot be
    // split by a concurrent death sweep.
    if let Some(entry) = shared.pending().get_mut(&router_id) {
        entry.shard = shard;
        entry.generation = generation;
    } else {
        // Swept (and re-dispatched) between insert and here; nothing to
        // write on this connection.
        return Ok(());
    }
    let writer = slot.writer.as_mut().expect("connected above");
    match writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
    {
        Ok(()) => Ok(()),
        Err(_) => {
            slot.writer = None;
            drop(slot);
            // Requeue everything written on this generation (the reader
            // thread will also notice the death, but its sweep of the same
            // generation then finds nothing left — entries are requeued
            // exactly once).
            sweep_generation(shared, shard, generation);
            Err(())
        }
    }
}

/// Connect a backend slot and spawn the reader thread that owns the read
/// half for this generation.  Caller holds the slot lock.
fn connect_backend(shared: &Arc<Shared>, shard: usize, slot: &mut Slot) -> Result<(), ()> {
    if let Some(last) = slot.last_attempt {
        if last.elapsed() < shared.cooldown {
            return Err(());
        }
    }
    slot.last_attempt = Some(Instant::now());
    let stream = TcpStream::connect(&shared.backends[shard].addr).map_err(|_| ())?;
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone().map_err(|_| ())?;
    slot.generation += 1;
    let generation = slot.generation;
    slot.writer = Some(stream);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("nonrec-route-shard-{shard}"))
        .spawn(move || backend_read_loop(&shared, shard, generation, read_half))
        .map_err(|_| ())?;
    Ok(())
}

/// The per-backend-connection reader: match responses to pending entries by
/// router id, restore the client id, forward to the owning client.  On EOF
/// or error, clear the slot (if this generation still owns it) and requeue
/// everything written on this generation.
fn backend_read_loop(shared: &Arc<Shared>, shard: usize, generation: u64, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(mut value) = json::parse(trimmed) else {
            // A backend speaking garbage is indistinguishable from a dead
            // one for the requests in flight; drop the connection and let
            // the sweep requeue them.
            break;
        };
        let Some(router_id) = value.get("id").and_then(Value::as_u64) else {
            // Unattributable frame (e.g. the backend's one-line
            // connection-limit rejection carries id null); skip it — if the
            // backend then closes, the sweep handles the fallout.
            continue;
        };
        let Some(pending) = shared.pending().remove(&router_id) else {
            continue;
        };
        let busy = value
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            == Some("busy");
        {
            let mut counters = shared.counters();
            counters.shards[shard].replies += 1;
            if busy {
                // Forwarded verbatim — the client must see `busy` (backend
                // queue pressure) as distinct from `shard_unavailable`
                // (fleet degradation).
                counters.shards[shard].busy += 1;
            }
        }
        swap_id(&mut value, pending.original_id.unwrap_or(Value::Null));
        let _ = pending.client.send(value.render());
    }
    shared.counters().shards[shard].disconnects += 1;
    {
        let mut slot = shared.slot(shard);
        if slot.generation == generation {
            slot.writer = None;
        }
    }
    sweep_generation(shared, shard, generation);
}

/// Requeue every pending entry written on `(shard, generation)` — the
/// requests a dead connection took down with it.  Re-dispatch starts at the
/// next shard on the ring (the dead one would only cost a cooldown probe).
fn sweep_generation(shared: &Arc<Shared>, shard: usize, generation: u64) {
    let orphans: Vec<(u64, Pending)> = {
        let mut pending = shared.pending();
        let ids: Vec<u64> = pending
            .iter()
            .filter(|(_, entry)| entry.shard == shard && entry.generation == generation)
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter()
            .filter_map(|id| pending.remove(&id).map(|entry| (id, entry)))
            .collect()
    };
    if orphans.is_empty() {
        return;
    }
    {
        let mut counters = shared.counters();
        counters.shards[shard].requeued += orphans.len() as u64;
    }
    for (router_id, mut entry) in orphans {
        entry.shard = (shard + 1) % shared.backends.len();
        entry.generation = u64::MAX;
        dispatch(shared, router_id, entry);
    }
}

/// The router's own `stats` payload: router-level counters plus a per-shard
/// block (liveness, forwarded/replies/busy/requeued/disconnects).
fn stats_json(shared: &Arc<Shared>) -> Value {
    let inflight = shared.pending().len();
    let alive: Vec<bool> = (0..shared.backends.len())
        .map(|shard| shared.slot(shard).writer.is_some())
        .collect();
    let counters = shared.counters();
    let shards: Vec<Value> = counters
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            obj(vec![
                ("addr", Value::str(shared.backends[i].addr.clone())),
                ("alive", Value::Bool(alive[i])),
                ("forwarded", Value::num(s.forwarded as f64)),
                ("replies", Value::num(s.replies as f64)),
                ("busy", Value::num(s.busy as f64)),
                ("requeued", Value::num(s.requeued as f64)),
                ("disconnects", Value::num(s.disconnects as f64)),
            ])
        })
        .collect();
    obj(vec![
        (
            "router",
            obj(vec![
                ("requests", Value::num(counters.requests as f64)),
                ("invalid_json", Value::num(counters.invalid_json as f64)),
                ("bad_request", Value::num(counters.bad_request as f64)),
                ("shard_unavailable", Value::num(counters.unavailable as f64)),
                ("inflight", Value::num(inflight as f64)),
            ]),
        ),
        ("shards", Value::Arr(shards)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hash_is_structural_and_deterministic() {
        // Variable names and whitespace do not change the shard; the
        // predicate structure does.
        let a = route_hash("p(X, Y) :- e(X, Z), e(Z, Y).");
        let b = route_hash("p(U, V)  :-  e(U, W),  e(W, V).");
        let c = route_hash("p(X, Y) :- f(X, Z), e(Z, Y).");
        assert_eq!(a, b, "alpha-equivalent programs must share a shard");
        assert_ne!(a, c, "structurally different programs should split");
        // Stable across calls (and, by construction, across processes:
        // the hash never sees interner indices).
        assert_eq!(a, route_hash("p(X, Y) :- e(X, Z), e(Z, Y)."));
    }

    #[test]
    fn swap_id_replaces_and_restores() {
        let mut value = json::parse(r#"{"op":"stats","id":"mine"}"#).unwrap();
        let old = swap_id(&mut value, Value::num(42.0));
        assert_eq!(old.as_ref().and_then(Value::as_str), Some("mine"));
        assert_eq!(value.get("id").unwrap().as_u64(), Some(42));
        // And a request without an id gains one.
        let mut value = json::parse(r#"{"op":"stats"}"#).unwrap();
        assert!(swap_id(&mut value, Value::num(7.0)).is_none());
        assert_eq!(value.get("id").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn batches_route_by_their_first_program() {
        let value = json::parse(
            r#"{"op":"batch","requests":[{"op":"stats"},{"op":"optimize","program":"p(X) :- e(X, X).","goal":"p"}]}"#,
        )
        .unwrap();
        assert_eq!(route_text(&value), Some("p(X) :- e(X, X)."));
        let keyless = json::parse(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(route_text(&keyless), None);
    }

    #[test]
    fn all_backends_down_answers_shard_unavailable() {
        // Bind-then-drop a listener to get a port with nothing behind it.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig::new(vec![dead_addr.clone(), dead_addr]),
        )
        .unwrap();
        let addr = router.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = router.run();
        });
        let mut client = crate::client::Client::connect(addr).unwrap();
        let response = client
            .request(&crate::protocol::equivalence_request(
                "p(X) :- e(X, X).",
                "p",
                "p(X) :- e(X, X).",
            ))
            .unwrap();
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_str(),
            Some(SHARD_UNAVAILABLE)
        );
        // Admin verbs are rejected at the router, not forwarded.
        let rejected = client
            .request(&crate::protocol::clear_cache_request())
            .unwrap();
        assert_eq!(
            rejected.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad_request")
        );
        // The router's own stats reflect what happened.
        let stats = client.request(&crate::protocol::stats_request()).unwrap();
        let router_block = stats.get("result").unwrap().get("router").unwrap();
        assert_eq!(
            router_block.get("shard_unavailable").unwrap().as_u64(),
            Some(1)
        );
        let shards = stats.get("result").unwrap().get("shards").unwrap();
        assert_eq!(shards.as_arr().unwrap().len(), 2);
    }
}
