//! Response memo: a bounded cache of complete decision results keyed by
//! the **exact request content**.
//!
//! The structural [`DecisionCache`](nonrec_equivalence::cache::DecisionCache)
//! makes a repeated decision cheap to *decide* — but a warm request still
//! pays to parse both programs, unfold the candidate, and canonicalise
//! every rule before it can so much as look the answer up.  On the wire
//! that re-canonicalisation is pure overhead: two byte-identical requests
//! are guaranteed to produce the same result payload (decisions are pure
//! functions of the request; the cache only changes how fast they are
//! answered, never what they answer — the differential suites lock this).
//!
//! So the serving layer memoises at the text level: the first execution of
//! a request stores its `result` payload here, and a byte-identical repeat
//! is answered **on the reader thread** — no worker-pool round trip, no
//! parsing beyond the request frame, no canonicalisation.  This is what
//! lets a pipelined warm client drain at memory speed instead of decision
//! speed (experiment E14's pipelined phases gate the ratio).
//!
//! Soundness boundaries, enforced by [`memo_key`]:
//!
//! * only the pure decision verbs (`containment`, `equivalence`, `bounded`,
//!   `optimize`, `minimize`, `rewrite`) are memoised — never `trace`,
//!   `stats`, `metrics_text`, the admin verbs, or batches (batch items
//!   re-enter the pool individually and carry their own ids);
//! * a request with `"no_cache": true` never touches the memo, matching
//!   the decision layer's own contract for that flag;
//! * the key is the complete debug rendering of the parsed command —
//!   every field that reaches the engine is part of the key, so no two
//!   requests that could differ in outcome can collide;
//! * error responses are not stored (a deadline expiry or resource-limit
//!   abort may succeed on retry with different load).
//!
//! The memo is process-global (like the `DecisionCache` it fronts),
//! bounded to [`MEMO_CAP`] entries with least-recently-used eviction, and
//! cleared by the `clear_cache` admin verb so "forget everything" keeps
//! meaning what it says.
//!
//! In front of it sits a second, even earlier layer — the [`LineMemo`] —
//! which answers *byte-identical request lines* before the JSON frame is
//! parsed at all; see its docs for why that inherits this module's
//! soundness argument.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::json::Value;
use crate::protocol::Command;

/// Maximum number of memoised responses.  Result payloads are single-line
/// JSON values (typically well under a kilobyte; counterexamples a few),
/// so the memo's memory footprint stays in the low megabytes.
pub const MEMO_CAP: usize = 4096;

/// The memo key of a command: `Some` exactly when the command may be
/// memoised (see the module docs for the boundaries).
pub fn memo_key(command: &Command) -> Option<String> {
    let options = match command {
        Command::Containment { options, .. }
        | Command::Equivalence { options, .. }
        | Command::Bounded { options, .. }
        | Command::Optimize { options, .. }
        | Command::Minimize { options, .. }
        | Command::Rewrite { options, .. } => options,
        // `trace` is excluded deliberately: its payload is the *events* of
        // an actual run, and replaying a stored event list would report a
        // run that never happened (a cached repeat legitimately traces as a
        // single cache-hit decision span instead).
        Command::Trace { .. }
        | Command::MetricsText
        | Command::Batch { .. }
        | Command::Stats
        | Command::ClearCache
        | Command::CacheLimits { .. }
        | Command::SaveCache { .. }
        | Command::LoadCache { .. } => return None,
    };
    if !options.use_cache {
        return None;
    }
    // The derived debug rendering covers every field of every decision
    // variant (programs, goal, query, depth, flags, options), so equal keys
    // imply equal engine inputs.
    Some(format!("{command:?}"))
}

struct Entry {
    result: Value,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// The bounded text-level result cache.  See the module docs.
#[derive(Default)]
pub struct ResponseMemo {
    inner: Mutex<Inner>,
}

impl ResponseMemo {
    /// A fresh, empty memo (tests; the server uses [`ResponseMemo::global`]).
    pub fn new() -> ResponseMemo {
        ResponseMemo::default()
    }

    /// The process-wide memo every connection of every in-process server
    /// shares, mirroring `DecisionCache::global()`.
    pub fn global() -> &'static ResponseMemo {
        static GLOBAL: OnceLock<ResponseMemo> = OnceLock::new();
        GLOBAL.get_or_init(ResponseMemo::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Recall the stored result payload for `key`, refreshing its LRU
    /// recency.
    pub fn lookup(&self, key: &str) -> Option<Value> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(key).map(|entry| {
            entry.last_used = tick;
            entry.result.clone()
        })
    }

    /// Store the result payload of a successfully executed command,
    /// evicting the least-recently-used entry when the memo is full.
    ///
    /// Runs on the cold path only (after a full decision, which dwarfs it),
    /// so the eviction scan stays a plain minimum search.
    pub fn store(&self, key: String, result: &Value) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= MEMO_CAP && !inner.entries.contains_key(&key) {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                result: result.clone(),
                last_used: tick,
            },
        );
    }

    /// Forget everything (the `clear_cache` admin verb).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// Number of memoised responses (the `stats` verb's gauge).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct LineEntry {
    verb: &'static str,
    response: String,
    last_used: u64,
}

#[derive(Default)]
struct LineInner {
    entries: HashMap<String, LineEntry>,
    tick: u64,
}

/// The raw-line front memo: complete rendered response **lines** keyed by
/// the exact bytes of the request line.
///
/// The [`ResponseMemo`] already spares a repeated decision its
/// canonicalisation — but the reader thread still parses the JSON frame
/// and re-derives the command key on every repeat.  A pipelined warm
/// burst is byte-identical line after byte-identical line, so even that
/// parse is pure overhead.  This memo answers such repeats with a stored
/// response line before the frame is parsed at all.
///
/// Soundness is inherited, not re-argued: a line is stored **only** after
/// that exact line was parsed, proved memoisable by [`memo_key`] (pure
/// decision verb, `use_cache` in force), and answered successfully.  A
/// `stats`, admin, batch, or `no_cache` line can therefore never be in
/// here.  The request `id` is part of the line bytes, so the stored
/// response echoes the right id by construction; decision responses are
/// pure functions of the line, so replaying one verbatim is exactly what
/// the wire contract promises.  Error responses are never stored, and the
/// `clear_cache` admin verb clears this memo along with the others.
#[derive(Default)]
pub struct LineMemo {
    inner: Mutex<LineInner>,
}

impl LineMemo {
    /// A fresh, empty memo (tests; the server uses [`LineMemo::global`]).
    pub fn new() -> LineMemo {
        LineMemo::default()
    }

    /// The process-wide instance, mirroring [`ResponseMemo::global`].
    pub fn global() -> &'static LineMemo {
        static GLOBAL: OnceLock<LineMemo> = OnceLock::new();
        GLOBAL.get_or_init(LineMemo::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LineInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Recall the stored response line for a request line, refreshing its
    /// LRU recency.  Returns the verb too, so the caller can record the
    /// completion under the right name without parsing anything.
    pub fn lookup(&self, line: &str) -> Option<(&'static str, String)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(line).map(|entry| {
            entry.last_used = tick;
            (entry.verb, entry.response.clone())
        })
    }

    /// Store the rendered response line of a successfully executed,
    /// memoisable request line (cold path only; see [`ResponseMemo::store`]
    /// for the eviction rationale).
    pub fn store(&self, line: String, verb: &'static str, response: String) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= MEMO_CAP && !inner.entries.contains_key(&line) {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
            }
        }
        inner.entries.insert(
            line,
            LineEntry {
                verb,
                response,
                last_used: tick,
            },
        );
    }

    /// Forget everything (the `clear_cache` admin verb).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// Number of memoised response lines (the `stats` verb's gauge).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn command_of(text: &str) -> Command {
        let value = crate::json::parse(text).unwrap();
        let Request { command, .. } = parse_request(&value, true).unwrap();
        command
    }

    #[test]
    fn decision_verbs_are_keyed_and_admin_verbs_are_not() {
        let containment = command_of(
            r#"{"op":"containment","program":"p(X) :- e(X, X).","goal":"p","query":"q(X) :- e(X, X)."}"#,
        );
        assert!(memo_key(&containment).is_some());
        // The new decision verbs are memoisable like the original four.
        for text in [
            r#"{"op":"minimize","query":"q(X) :- e(X, X)."}"#,
            r#"{"op":"rewrite","program":"p(X) :- e(X, X).","goal":"p"}"#,
        ] {
            assert!(memo_key(&command_of(text)).is_some(), "{text}");
        }
        // The observability and admin surfaces must never be: a memoised
        // `trace` would report a run that never happened, and a memoised
        // `stats`/`metrics_text`/admin response would freeze a live gauge.
        for text in [
            r#"{"op":"stats"}"#,
            r#"{"op":"clear_cache"}"#,
            r#"{"op":"cache_limits"}"#,
            r#"{"op":"save_cache","path":"x.nrdc"}"#,
            r#"{"op":"load_cache"}"#,
            r#"{"op":"batch","requests":[{"op":"stats"}]}"#,
            r#"{"op":"trace","program":"p(X) :- e(X, X).","goal":"p","query":"q(X) :- e(X, X)."}"#,
            r#"{"op":"metrics_text"}"#,
        ] {
            assert_eq!(memo_key(&command_of(text)), None, "{text}");
        }
    }

    #[test]
    fn no_cache_requests_bypass_the_memo() {
        let cached =
            command_of(r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#);
        let uncached = command_of(
            r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2,"options":{"no_cache":true}}"#,
        );
        assert!(memo_key(&cached).is_some());
        assert_eq!(memo_key(&uncached), None);
    }

    #[test]
    fn keys_separate_every_field_that_reaches_the_engine() {
        let base = r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#;
        let variants = [
            r#"{"op":"bounded","program":"p(X) :- e(X, Y).","goal":"p","max_depth":2}"#,
            r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":3}"#,
            r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2,"options":{"max_pairs":7}}"#,
            r#"{"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2,"options":{"strategy":"magic"}}"#,
        ];
        let base_key = memo_key(&command_of(base)).unwrap();
        for variant in variants {
            assert_ne!(
                memo_key(&command_of(variant)).unwrap(),
                base_key,
                "{variant}"
            );
        }
        // The id is correlation, not content: it must NOT split the key.
        let with_id =
            r#"{"id":7,"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#;
        assert_eq!(memo_key(&command_of(with_id)).unwrap(), base_key);
    }

    #[test]
    fn line_memo_recalls_verbatim_and_evicts_lru() {
        let memo = LineMemo::new();
        memo.store(
            r#"{"id":1,"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#
                .into(),
            "bounded",
            r#"{"id": 1, "ok": true}"#.into(),
        );
        // Only the exact bytes hit — a different id is a different line.
        assert_eq!(
            memo.lookup(
                r#"{"id":1,"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#
            ),
            Some(("bounded", r#"{"id": 1, "ok": true}"#.to_string()))
        );
        assert_eq!(
            memo.lookup(
                r#"{"id":2,"op":"bounded","program":"p(X) :- e(X, X).","goal":"p","max_depth":2}"#
            ),
            None
        );
        memo.clear();
        assert!(memo.is_empty());

        let memo = LineMemo::new();
        for i in 0..MEMO_CAP {
            memo.store(format!("line{i}"), "bounded", format!("resp{i}"));
        }
        assert!(memo.lookup("line0").is_some());
        memo.store("overflow".into(), "bounded", "resp".into());
        assert_eq!(memo.len(), MEMO_CAP);
        assert!(memo.lookup("line0").is_some(), "recently used must survive");
        assert!(
            memo.lookup("line1").is_none(),
            "the least recently used entry is the one evicted"
        );
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let memo = ResponseMemo::new();
        for i in 0..MEMO_CAP {
            memo.store(format!("k{i}"), &Value::num(i as f64));
        }
        assert_eq!(memo.len(), MEMO_CAP);
        // Touch k0 so it is the most recently used, then overflow.
        assert!(memo.lookup("k0").is_some());
        memo.store("overflow".into(), &Value::Null);
        assert_eq!(memo.len(), MEMO_CAP);
        assert!(memo.lookup("k0").is_some(), "recently used must survive");
        assert!(
            memo.lookup("k1").is_none(),
            "the least recently used entry is the one evicted"
        );
        memo.clear();
        assert!(memo.is_empty());
    }
}
