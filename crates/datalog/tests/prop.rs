//! Property-based tests for the Datalog substrate: the printer/parser pair,
//! the dependency-graph classification, and the two evaluation strategies
//! are cross-checked on randomly generated programs and databases.

use proptest::prelude::*;

use datalog::atom::Pred;
use datalog::generate::{
    random_database, random_program, RandomDatabaseConfig, RandomProgramConfig,
};
use datalog::parser::parse_program;

fn program_config() -> RandomProgramConfig {
    RandomProgramConfig {
        edb_predicates: 2,
        idb_predicates: 2,
        rules: 5,
        max_body_atoms: 3,
        max_variables: 4,
        idb_probability: 0.4,
    }
}

fn db_config() -> RandomDatabaseConfig {
    RandomDatabaseConfig {
        domain_size: 4,
        relations: vec![("e0".into(), 2, 8), ("e1".into(), 2, 8)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pretty-printing then re-parsing a program is the identity.
    #[test]
    fn printer_and_parser_round_trip(seed in 0u64..10_000) {
        let program = random_program(&program_config(), seed);
        let printed = program.to_string();
        let reparsed = parse_program(&printed).expect("printed programs parse");
        prop_assert_eq!(program, reparsed);
    }

    /// The dependency-graph classification is consistent: a program is
    /// nonrecursive iff no predicate is recursive, and linearity implies
    /// every rule has at most one recursive body atom.
    #[test]
    fn dependency_classification_is_consistent(seed in 0u64..10_000) {
        let program = random_program(&program_config(), seed);
        let graph = program.dependency_graph();
        let any_recursive = program
            .idb_predicates()
            .into_iter()
            .any(|p| graph.is_recursive_pred(p));
        prop_assert_eq!(program.is_nonrecursive(), !any_recursive);
        prop_assert_eq!(program.is_recursive(), any_recursive);
        if program.is_linear() {
            for rule in program.rules() {
                let recursive_atoms = rule
                    .body
                    .iter()
                    .filter(|a| graph.is_recursive_pred(a.pred)
                        && graph.mutually_recursive(a.pred, rule.head_pred()))
                    .count();
                prop_assert!(recursive_atoms <= 1);
            }
        }
    }

    /// Evaluation is monotone in the database: adding facts never removes
    /// derived answers.
    #[test]
    fn evaluation_is_monotone_in_the_database(seed in 0u64..5_000) {
        let program = random_program(&program_config(), seed);
        let goal = Pred::new("q0");
        let small = random_database(&db_config(), seed);
        let mut large = small.clone();
        large.absorb(&random_database(&db_config(), seed.wrapping_add(99)));
        let small_answers: std::collections::BTreeSet<_> = datalog::eval::evaluate(&program, &small)
            .relation(goal)
            .iter()
            .cloned()
            .collect();
        let large_answers: std::collections::BTreeSet<_> = datalog::eval::evaluate(&program, &large)
            .relation(goal)
            .iter()
            .cloned()
            .collect();
        prop_assert!(small_answers.is_subset(&large_answers));
    }
}
