//! Property-based tests for the Datalog substrate: the printer/parser pair,
//! the dependency-graph classification, and the two evaluation strategies
//! are cross-checked on randomly generated programs and databases.
//!
//! The offline build has no `proptest`, so the properties run as
//! deterministic loops over seed ranges; the instances themselves come from
//! the seed-deterministic generators in `datalog::generate` (backed by the
//! in-repo `rng` crate), so every case is reproducible from its seed.

use datalog::atom::Pred;
use datalog::generate::{
    random_database, random_program, RandomDatabaseConfig, RandomProgramConfig,
};
use datalog::parser::parse_program;

const CASES: u64 = 48;

fn program_config() -> RandomProgramConfig {
    RandomProgramConfig {
        edb_predicates: 2,
        idb_predicates: 2,
        rules: 5,
        max_body_atoms: 3,
        max_variables: 4,
        idb_probability: 0.4,
    }
}

fn db_config() -> RandomDatabaseConfig {
    RandomDatabaseConfig {
        domain_size: 4,
        relations: vec![("e0".into(), 2, 8), ("e1".into(), 2, 8)],
    }
}

/// Spread consecutive case indices across the seed space so the sampled
/// instances draw from decorrelated streams (see `rng::spread_seed`).
fn seed(case: u64) -> u64 {
    rng::spread_seed(case)
}

/// Pretty-printing then re-parsing a program is the identity.
#[test]
fn printer_and_parser_round_trip() {
    for case in 0..CASES {
        let program = random_program(&program_config(), seed(case));
        let printed = program.to_string();
        let reparsed = parse_program(&printed).expect("printed programs parse");
        assert_eq!(program, reparsed, "case {case}");
    }
}

/// The dependency-graph classification is consistent: a program is
/// nonrecursive iff no predicate is recursive, and linearity implies
/// every rule has at most one recursive body atom.
#[test]
fn dependency_classification_is_consistent() {
    for case in 0..CASES {
        let program = random_program(&program_config(), seed(case));
        let graph = program.dependency_graph();
        let any_recursive = program
            .idb_predicates()
            .into_iter()
            .any(|p| graph.is_recursive_pred(p));
        assert_eq!(program.is_nonrecursive(), !any_recursive, "case {case}");
        assert_eq!(program.is_recursive(), any_recursive, "case {case}");
        if program.is_linear() {
            for rule in program.rules() {
                let recursive_atoms = rule
                    .body
                    .iter()
                    .filter(|a| {
                        graph.is_recursive_pred(a.pred)
                            && graph.mutually_recursive(a.pred, rule.head_pred())
                    })
                    .count();
                assert!(recursive_atoms <= 1, "case {case}");
            }
        }
    }
}

/// Evaluation is monotone in the database: adding facts never removes
/// derived answers.
#[test]
fn evaluation_is_monotone_in_the_database() {
    for case in 0..CASES {
        let program = random_program(&program_config(), seed(case));
        let goal = Pred::new("q0");
        let small = random_database(&db_config(), seed(case));
        let mut large = small.clone();
        large.absorb(&random_database(&db_config(), seed(case).wrapping_add(99)));
        let small_answers: std::collections::BTreeSet<_> =
            datalog::eval::evaluate(&program, &small)
                .relation(goal)
                .iter()
                .cloned()
                .collect();
        let large_answers: std::collections::BTreeSet<_> =
            datalog::eval::evaluate(&program, &large)
                .relation(goal)
                .iter()
                .cloned()
                .collect();
        assert!(small_answers.is_subset(&large_answers), "case {case}");
    }
}
