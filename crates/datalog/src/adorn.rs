//! Bound/free adornments under a sideways-information-passing strategy
//! (SIPS) — the planning half of goal-directed (magic-set) evaluation.
//!
//! Given a goal *pattern* — a goal atom whose constant positions are bound
//! and whose variable positions are free — [`adorn_program`] propagates
//! bound/free annotations from the goal through every reachable rule.  A
//! head adornment records which head argument positions arrive bound from
//! the caller; the SIPS then orders the rule body and decides, for each
//! body atom, which of its argument positions are bound at the moment it
//! is evaluated (a position is bound iff it holds a constant or a variable
//! already bound by the head or by an earlier body atom — "sideways"
//! information passing).  Each IDB body atom is annotated with the
//! resulting adornment, creating new `(predicate, adornment)` obligations
//! until the reachable set closes.
//!
//! Two SIPS are provided.  [`Sips::BoundPreferring`] (the default) greedily
//! picks, at each step, the not-yet-placed body atom with the most bound
//! argument positions, breaking ties by textual position — the same
//! selectivity heuristic [`crate::plan::JoinPlan`] uses at run time, so the
//! adornments the planner commits to match the join order the indexed
//! engine would choose.  [`Sips::LeftToRight`] keeps the textual body
//! order and only computes the adornments, which is the classical
//! presentation and a useful debugging baseline.
//!
//! The output [`AdornedProgram`] is consumed by [`crate::magic`], which
//! rewrites it into magic + guarded rules whose fixpoint derives only
//! goal-relevant facts.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::atom::{Atom, Pred};
use crate::program::Program;
use crate::rule::Rule;
use crate::term::{Term, Var};

/// A bound/free annotation, one flag per argument position (`true` =
/// bound).  Displayed in the classical string form, e.g. `bf` for a binary
/// predicate whose first argument is bound.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// Build an adornment from explicit flags.
    pub fn new(flags: Vec<bool>) -> Adornment {
        Adornment(flags)
    }

    /// The adornment of a goal pattern: constant positions are bound,
    /// variable positions are free.
    pub fn from_pattern(pattern: &Atom) -> Adornment {
        Adornment(
            pattern
                .terms
                .iter()
                .map(|t| matches!(t, Term::Const(_)))
                .collect(),
        )
    }

    /// The per-position flags (`true` = bound).
    pub fn flags(&self) -> &[bool] {
        &self.0
    }

    /// Number of argument positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the adornment of a 0-ary predicate.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// True if no position is bound (the rewrite degenerates to the plain
    /// program for such a goal — there is nothing to pass sideways).
    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            write!(f, "{}", if b { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

/// The sideways-information-passing strategy: how a rule body is ordered
/// while adornments are propagated through it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sips {
    /// Greedy: at each step pick the remaining body atom with the most
    /// bound argument positions, ties broken by textual position.  Default;
    /// mirrors the run-time [`crate::plan::JoinPlan`] heuristic.
    #[default]
    BoundPreferring,
    /// Keep the textual body order and only compute adornments — the
    /// classical left-to-right presentation.
    LeftToRight,
}

/// A body atom with its adornment: `Some` for IDB atoms (which the magic
/// rewrite renames and guards), `None` for EDB atoms (evaluated directly
/// against the database).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedBodyAtom {
    /// The original body atom.
    pub atom: Atom,
    /// Its adornment, if its predicate is an IDB predicate.
    pub adornment: Option<Adornment>,
}

/// One rule of the program, adorned for a particular head adornment.  The
/// body is stored in SIPS order, which is the order the magic rewrite (and
/// hence the rewritten evaluation) uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedRule {
    /// The original head atom.
    pub head: Atom,
    /// The adornment of the head predicate this version of the rule serves.
    pub head_adornment: Adornment,
    /// The body atoms in SIPS order, each with its adornment if IDB.
    pub body: Vec<AdornedBodyAtom>,
}

/// An adorned program: for every `(predicate, adornment)` pair reachable
/// from the goal pattern, one adorned copy of each of the predicate's
/// rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedProgram {
    /// The goal pattern the adornment started from (constants = bound).
    pub goal_pattern: Atom,
    /// The goal's adornment, `Adornment::from_pattern(goal_pattern)`.
    pub goal_adornment: Adornment,
    /// The adorned rules, in worklist (goal-first, breadth-first) order;
    /// within one `(predicate, adornment)` obligation, program rule order.
    pub rules: Vec<AdornedRule>,
}

impl AdornedProgram {
    /// The goal predicate.
    pub fn goal(&self) -> Pred {
        self.goal_pattern.pred
    }
}

/// Adorn `program` for the given goal pattern under `sips`.  Only
/// `(predicate, adornment)` pairs reachable from the goal are produced, so
/// rules for predicates the goal never touches are dropped entirely — the
/// first pruning step of goal-directed evaluation.
pub fn adorn_program(program: &Program, goal_pattern: &Atom, sips: Sips) -> AdornedProgram {
    let goal_adornment = Adornment::from_pattern(goal_pattern);
    let mut seen: BTreeSet<(Pred, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(Pred, Adornment)> = VecDeque::new();
    seen.insert((goal_pattern.pred, goal_adornment.clone()));
    queue.push_back((goal_pattern.pred, goal_adornment.clone()));
    let mut rules = Vec::new();
    while let Some((pred, adornment)) = queue.pop_front() {
        for (_, rule) in program.rules_for(pred) {
            let adorned = adorn_rule(program, rule, &adornment, sips);
            for body_atom in &adorned.body {
                if let Some(b) = &body_atom.adornment {
                    let key = (body_atom.atom.pred, b.clone());
                    if seen.insert(key.clone()) {
                        queue.push_back(key);
                    }
                }
            }
            rules.push(adorned);
        }
    }
    AdornedProgram {
        goal_pattern: goal_pattern.clone(),
        goal_adornment,
        rules,
    }
}

/// Adorn one rule for one head adornment: seed the bound-variable set from
/// the bound head positions, then place body atoms one at a time per the
/// SIPS, adorning each against the bindings available when it is placed.
fn adorn_rule(
    program: &Program,
    rule: &Rule,
    head_adornment: &Adornment,
    sips: Sips,
) -> AdornedRule {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    for (term, &is_bound) in rule.head.terms.iter().zip(head_adornment.flags()) {
        if is_bound {
            if let Term::Var(v) = *term {
                bound.insert(v);
            }
        }
    }
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut body = Vec::with_capacity(rule.body.len());
    while !remaining.is_empty() {
        let slot = match sips {
            Sips::LeftToRight => 0,
            Sips::BoundPreferring => remaining
                .iter()
                .enumerate()
                .max_by_key(|&(slot, &pos)| {
                    (
                        bound_positions(&rule.body[pos], &bound),
                        std::cmp::Reverse(slot),
                    )
                })
                .map(|(slot, _)| slot)
                .unwrap(),
        };
        let pos = remaining.remove(slot);
        let atom = &rule.body[pos];
        let adornment = program.is_idb(atom.pred).then(|| {
            Adornment::new(
                atom.terms
                    .iter()
                    .map(|t| match *t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(&v),
                    })
                    .collect(),
            )
        });
        body.push(AdornedBodyAtom {
            atom: atom.clone(),
            adornment,
        });
        bound.extend(atom.variables());
    }
    AdornedRule {
        head: rule.head.clone(),
        head_adornment: head_adornment.clone(),
        body,
    }
}

/// Number of argument positions of `atom` that are bound given the current
/// bound-variable set (constants are always bound).
fn bound_positions(atom: &Atom, bound: &BTreeSet<Var>) -> usize {
    atom.terms
        .iter()
        .filter(|t| match **t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(&v),
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::transitive_closure;
    use crate::parser::parse_program;

    fn pattern(text: &str) -> Atom {
        // Parse the pattern as the head of a trivially safe rule.
        crate::parser::parse_rule(&format!("{text} :- {text}."))
            .unwrap()
            .head
    }

    #[test]
    fn adornment_display_and_counts() {
        let a = Adornment::new(vec![true, false, true]);
        assert_eq!(a.to_string(), "bfb");
        assert_eq!(a.bound_count(), 2);
        assert_eq!(a.len(), 3);
        assert!(!a.is_all_free());
        assert!(Adornment::new(vec![false, false]).is_all_free());
        assert!(Adornment::new(vec![]).is_empty());
    }

    #[test]
    fn pattern_adornment_marks_constants_bound() {
        let p = pattern("p(c0, Y)");
        assert_eq!(Adornment::from_pattern(&p).to_string(), "bf");
        let q = pattern("p(c0, c5)");
        assert_eq!(Adornment::from_pattern(&q).to_string(), "bb");
    }

    #[test]
    fn transitive_closure_bf_reaches_only_bf() {
        // p(X, Y) :- e(X, Z), p(Z, Y).  With p^bf, e's X is bound, so Z is
        // bound after e is placed, giving the recursive call p^bf again —
        // the classic single-adornment closure.
        let program = transitive_closure("e", "e");
        let adorned = adorn_program(&program, &pattern("p(c0, Y)"), Sips::default());
        assert_eq!(adorned.goal_adornment.to_string(), "bf");
        assert_eq!(adorned.rules.len(), 2, "one adornment, two rules");
        for rule in &adorned.rules {
            for body_atom in &rule.body {
                if let Some(a) = &body_atom.adornment {
                    assert_eq!(a.to_string(), "bf");
                }
            }
        }
    }

    #[test]
    fn bound_preferring_sips_reorders_the_body() {
        // q(X) :- e(Y, Z), f(X, Y).  With q^b, f has one bound position and
        // e has none, so the bound-preferring SIPS places f first; the
        // left-to-right SIPS keeps e first.
        let program = parse_program("q(X) :- e(Y, Z), f(X, Y).\nq(X) :- g(X).").unwrap();
        let goal = pattern("q(c0)");
        let greedy = adorn_program(&program, &goal, Sips::BoundPreferring);
        assert_eq!(greedy.rules[0].body[0].atom.pred, Pred::new("f"));
        assert_eq!(greedy.rules[0].body[1].atom.pred, Pred::new("e"));
        let textual = adorn_program(&program, &goal, Sips::LeftToRight);
        assert_eq!(textual.rules[0].body[0].atom.pred, Pred::new("e"));
    }

    #[test]
    fn unreachable_predicates_are_dropped() {
        let program = parse_program(
            "p(X, Y) :- e(X, Y).\n\
             r(X, Y) :- e(X, Y), p(X, Y).",
        )
        .unwrap();
        let adorned = adorn_program(&program, &pattern("p(c0, Y)"), Sips::default());
        // Only p's rule is reachable from the goal; r's rule is dropped.
        assert_eq!(adorned.rules.len(), 1);
        assert_eq!(adorned.rules[0].head.pred, Pred::new("p"));
    }

    #[test]
    fn distinct_call_patterns_get_distinct_adornments() {
        // s(X, Y) :- p(X, Z), p(Y, W): under s^bf the first call is p^bf,
        // the second p^ff (Y free, nothing binds it sideways).
        let program = parse_program(
            "s(X, Y) :- p(X, Z), p(Y, W).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let adorned = adorn_program(&program, &pattern("s(c0, Y)"), Sips::LeftToRight);
        let adornments: BTreeSet<String> = adorned
            .rules
            .iter()
            .flat_map(|r| r.body.iter())
            .filter_map(|b| b.adornment.as_ref().map(|a| a.to_string()))
            .collect();
        assert_eq!(adornments, BTreeSet::from(["bf".into(), "ff".into()]));
        // p gets rules for both adornments: 1 (s rule) + 2 (p under bf/ff).
        assert_eq!(adorned.rules.len(), 3);
    }

    #[test]
    fn repeated_head_variable_is_bound_if_any_occurrence_is() {
        // p(X, X) under ^bf: X is bound via the first position.
        let program = parse_program("p(X, X) :- e(X, Y), q(Y).\nq(Y) :- f(Y).").unwrap();
        let adorned = adorn_program(&program, &pattern("p(c0, Y)"), Sips::LeftToRight);
        let e_atom = &adorned.rules[0].body[0];
        assert_eq!(e_atom.atom.pred, Pred::new("e"));
        assert!(e_atom.adornment.is_none(), "EDB atoms carry no adornment");
        let q_atom = &adorned.rules[0].body[1];
        assert_eq!(q_atom.adornment.as_ref().unwrap().to_string(), "b");
    }
}
