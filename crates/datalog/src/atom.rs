//! Predicate symbols, atoms, and ground facts.

use std::fmt;

use crate::intern::{self, Sym};
use crate::term::{Constant, Term, Var};

/// A predicate symbol.
///
/// Arity is not part of the symbol's identity; [`crate::program::Program`]
/// validation checks that every occurrence of a predicate uses a consistent
/// arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub Sym);

impl Pred {
    /// Create (or look up) a predicate symbol with the given name.
    pub fn new(name: &str) -> Self {
        Pred(intern::intern(name))
    }

    /// The predicate's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An atom `p(t1, …, tk)`: a predicate symbol applied to a list of terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Pred,
    /// The argument terms, in order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom from a predicate and terms.
    pub fn new(pred: Pred, terms: Vec<Term>) -> Self {
        Atom { pred, terms }
    }

    /// Convenience constructor: `Atom::app("e", ["X", "Y"])` builds
    /// `e(X, Y)` treating each argument that starts with an uppercase letter
    /// or `_` as a variable and everything else as a constant (the parser's
    /// convention).
    pub fn app<const N: usize>(pred: &str, args: [&str; N]) -> Self {
        let terms = args
            .iter()
            .map(|a| {
                if a.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                    Term::Var(Var::new(a))
                } else {
                    Term::Const(Constant::new(a))
                }
            })
            .collect();
        Atom::new(Pred::new(pred), terms)
    }

    /// The arity of this atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over the variables occurring in the atom, in positional
    /// order, with repetitions.
    pub fn variables(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// Iterator over the constants occurring in the atom, in positional
    /// order, with repetitions.
    pub fn constants(&self) -> impl Iterator<Item = Constant> + '_ {
        self.terms.iter().filter_map(|t| t.as_const())
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }

    /// Convert a ground atom into a fact; returns `None` if a variable is
    /// present.
    pub fn to_fact(&self) -> Option<Fact> {
        let tuple: Option<Vec<Constant>> = self.terms.iter().map(|t| t.as_const()).collect();
        Some(Fact {
            pred: self.pred,
            tuple: tuple?,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A ground fact: a predicate applied to a tuple of constants.
///
/// Facts are the rows of [`crate::database::Database`] relations.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The predicate symbol.
    pub pred: Pred,
    /// The constant tuple.
    pub tuple: Vec<Constant>,
}

impl Fact {
    /// Construct a fact.
    pub fn new(pred: Pred, tuple: Vec<Constant>) -> Self {
        Fact { pred, tuple }
    }

    /// Convenience constructor mirroring [`Atom::app`], all arguments are
    /// constants.
    pub fn app<const N: usize>(pred: &str, args: [&str; N]) -> Self {
        Fact {
            pred: Pred::new(pred),
            tuple: args.iter().map(|a| Constant::new(a)).collect(),
        }
    }

    /// View the fact as a (ground) atom.
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred,
            terms: self.tuple.iter().map(|&c| Term::Const(c)).collect(),
        }
    }

    /// The arity of this fact.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_atom())
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_classifies_variables_and_constants() {
        let a = Atom::app("e", ["X", "y"]);
        assert_eq!(a.pred, Pred::new("e"));
        assert_eq!(a.terms[0], Term::Var(Var::new("X")));
        assert_eq!(a.terms[1], Term::Const(Constant::new("y")));
    }

    #[test]
    fn underscore_prefixed_identifiers_are_variables() {
        let a = Atom::app("p", ["_x"]);
        assert!(a.terms[0].is_var());
    }

    #[test]
    fn display_matches_datalog_syntax() {
        let a = Atom::app("buys", ["X", "Y"]);
        assert_eq!(a.to_string(), "buys(X, Y)");
    }

    #[test]
    fn ground_atoms_convert_to_facts() {
        let a = Atom::app("e", ["a", "b"]);
        assert!(a.is_ground());
        let f = a.to_fact().unwrap();
        assert_eq!(f, Fact::app("e", ["a", "b"]));
        assert_eq!(f.to_atom(), a);
    }

    #[test]
    fn non_ground_atoms_do_not_convert() {
        let a = Atom::app("e", ["X", "b"]);
        assert!(!a.is_ground());
        assert!(a.to_fact().is_none());
    }

    #[test]
    fn variables_iterator_reports_occurrences_in_order() {
        let a = Atom::app("t", ["X", "a", "Y", "X"]);
        let vars: Vec<_> = a.variables().collect();
        assert_eq!(vars, vec![Var::new("X"), Var::new("Y"), Var::new("X")]);
        let consts: Vec<_> = a.constants().collect();
        assert_eq!(consts, vec![Constant::new("a")]);
    }

    #[test]
    fn arity_is_term_count() {
        assert_eq!(Atom::app("p", []).arity(), 0);
        assert_eq!(Atom::app("p", ["X", "Y", "Z"]).arity(), 3);
        assert_eq!(Fact::app("p", ["a"]).arity(), 1);
    }
}
