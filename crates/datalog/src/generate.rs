//! Instance generators: parameterised program families from the paper and
//! random programs / databases for differential testing and benchmarking.

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};

use crate::atom::{Atom, Fact, Pred};
use crate::database::Database;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::{Constant, Term, Var};

/// The transitive-closure program of Example 2.5:
///
/// ```text
/// p(X, Y) :- e(X, Z), p(Z, Y).
/// p(X, Y) :- e'(X, Y).
/// ```
///
/// `exit_pred` names the EDB predicate used by the exit rule (the paper's
/// `e'`); pass `"e"` to make the exit rule use the same edge relation.
pub fn transitive_closure(edge: &str, exit_pred: &str) -> Program {
    Program::new(vec![
        Rule::new(
            Atom::app("p", ["X", "Y"]),
            vec![Atom::app(edge, ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
        ),
        Rule::new(
            Atom::app("p", ["X", "Y"]),
            vec![Atom::app(exit_pred, ["X", "Y"])],
        ),
    ])
}

/// The nonlinear (doubling) variant of transitive closure:
///
/// ```text
/// p(X, Y) :- p(X, Z), p(Z, Y).
/// p(X, Y) :- e(X, Y).
/// ```
pub fn transitive_closure_nonlinear(edge: &str) -> Program {
    Program::new(vec![
        Rule::new(
            Atom::app("p", ["X", "Y"]),
            vec![Atom::app("p", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
        ),
        Rule::new(
            Atom::app("p", ["X", "Y"]),
            vec![Atom::app(edge, ["X", "Y"])],
        ),
    ])
}

/// The `dist_i` family of Example 6.1: `dist_n(x, y)` holds exactly when
/// there is a path of length 2^n from x to y.  Nonrecursive; its expansion
/// into a union of conjunctive queries is a single CQ of size 2^n.
pub fn dist_program(n: usize) -> Program {
    let mut rules = vec![Rule::new(
        Atom::app("dist0", ["X", "Y"]),
        vec![Atom::app("e", ["X", "Y"])],
    )];
    for i in 1..=n {
        rules.push(Rule::new(
            Atom::app(&format!("dist{i}"), ["X", "Y"]),
            vec![
                Atom::app(&format!("dist{}", i - 1), ["X", "Z"]),
                Atom::app(&format!("dist{}", i - 1), ["Z", "Y"]),
            ],
        ));
    }
    Program::new(rules)
}

/// The goal predicate of [`dist_program`].
pub fn dist_goal(n: usize) -> Pred {
    Pred::new(&format!("dist{n}"))
}

/// The `dist_i` / `dist<_i` family of Example 6.2: `dist_n(x, y)` holds when
/// there is a path of length **at most** 2^n, and `distlt_n(x, y)` when the
/// path has length at most 2^n − 1.  Uses unsafe fact-rules exactly as in
/// the paper.
pub fn dist_le_program(n: usize) -> Program {
    let mut rules = vec![
        Rule::new(
            Atom::app("dist0", ["X", "Y"]),
            vec![Atom::app("e", ["X", "Y"])],
        ),
        Rule::fact(Atom::app("dist0", ["X", "X"])),
        Rule::fact(Atom::app("distlt0", ["X", "X"])),
    ];
    for i in 1..=n {
        rules.push(Rule::new(
            Atom::app(&format!("dist{i}"), ["X", "Y"]),
            vec![
                Atom::app(&format!("dist{}", i - 1), ["X", "Z"]),
                Atom::app(&format!("dist{}", i - 1), ["Z", "Y"]),
            ],
        ));
        rules.push(Rule::new(
            Atom::app(&format!("distlt{i}"), ["X", "Y"]),
            vec![
                Atom::app(&format!("distlt{}", i - 1), ["X", "Z"]),
                Atom::app(&format!("dist{}", i - 1), ["Z", "Y"]),
            ],
        ));
    }
    Program::new(rules)
}

/// The `equal_i` family of Example 6.3: `equal_n(x, y, u, v)` holds when
/// there are paths of length 2^n from x to y and from u to v carrying the
/// same Zero/One labels (except possibly the endpoints).
pub fn equal_program(n: usize) -> Program {
    let mut rules = vec![
        Rule::new(
            Atom::app("equal0", ["X", "Y", "U", "V"]),
            vec![
                Atom::app("e", ["X", "Y"]),
                Atom::app("e", ["U", "V"]),
                Atom::app("zero", ["X"]),
                Atom::app("zero", ["U"]),
            ],
        ),
        Rule::new(
            Atom::app("equal0", ["X", "Y", "U", "V"]),
            vec![
                Atom::app("e", ["X", "Y"]),
                Atom::app("e", ["U", "V"]),
                Atom::app("one", ["X"]),
                Atom::app("one", ["U"]),
            ],
        ),
    ];
    for i in 1..=n {
        rules.push(Rule::new(
            Atom::app(&format!("equal{i}"), ["X", "Y", "U", "V"]),
            vec![
                Atom::app(&format!("equal{}", i - 1), ["X", "Xp", "U", "Up"]),
                Atom::app(&format!("equal{}", i - 1), ["Xp", "Y", "Up", "V"]),
            ],
        ));
    }
    Program::new(rules)
}

/// The `word_i` family of Example 6.6: a *linear* nonrecursive program whose
/// unfolding has exponentially many disjuncts, each of linear size.
pub fn word_program(n: usize) -> Program {
    let mut rules = vec![
        Rule::new(
            Atom::app("word1", ["X", "Y"]),
            vec![Atom::app("e", ["X", "Y"]), Atom::app("zero", ["X"])],
        ),
        Rule::new(
            Atom::app("word1", ["X", "Y"]),
            vec![Atom::app("e", ["X", "Y"]), Atom::app("one", ["X"])],
        ),
    ];
    for i in 2..=n {
        for label in ["zero", "one"] {
            rules.push(Rule::new(
                Atom::app(&format!("word{i}"), ["X", "Y"]),
                vec![
                    Atom::app(&format!("word{}", i - 1), ["X", "Xp"]),
                    Atom::app("e", ["Xp", "Y"]),
                    Atom::app(label, ["Y"]),
                ],
            ));
        }
    }
    Program::new(rules)
}

/// A linear chain-of-predicates program: `p_k(X, Y) :- e(X, Z), p_{k-1}(Z, Y)`
/// with `p_0(X, Y) :- e(X, Y)`.  Nonrecursive, used by scaling benches.
pub fn chain_program(k: usize) -> Program {
    let mut rules = vec![Rule::new(
        Atom::app("p0", ["X", "Y"]),
        vec![Atom::app("e", ["X", "Y"])],
    )];
    for i in 1..=k {
        rules.push(Rule::new(
            Atom::app(&format!("p{i}"), ["X", "Y"]),
            vec![
                Atom::app("e", ["X", "Z"]),
                Atom::app(&format!("p{}", i - 1), ["Z", "Y"]),
            ],
        ));
    }
    Program::new(rules)
}

/// A simple-path (chain) database `e(c0, c1), …, e(c_{n-1}, c_n)`.
pub fn chain_database(edge: &str, n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(Fact::new(
            Pred::new(edge),
            vec![Constant::from_usize(i), Constant::from_usize(i + 1)],
        ));
    }
    db
}

/// A cycle database `e(c0, c1), …, e(c_{n-1}, c0)`.
pub fn cycle_database(edge: &str, n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(Fact::new(
            Pred::new(edge),
            vec![Constant::from_usize(i), Constant::from_usize((i + 1) % n)],
        ));
    }
    db
}

/// Configuration for [`random_database`].
#[derive(Clone, Debug)]
pub struct RandomDatabaseConfig {
    /// Number of constants in the domain.
    pub domain_size: usize,
    /// For each predicate: (name, arity, number of random tuples).
    pub relations: Vec<(String, usize, usize)>,
}

/// Generate a random database (tuples drawn uniformly with replacement, then
/// deduplicated).
pub fn random_database(config: &RandomDatabaseConfig, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (name, arity, count) in &config.relations {
        let pred = Pred::new(name);
        for _ in 0..*count {
            let tuple: Vec<Constant> = (0..*arity)
                .map(|_| Constant::from_usize(rng.random_range(0..config.domain_size.max(1))))
                .collect();
            db.insert_tuple(pred, tuple);
        }
    }
    db
}

/// Configuration for [`random_program`].
#[derive(Clone, Debug)]
pub struct RandomProgramConfig {
    /// Number of EDB predicates (named `e0`, `e1`, …), all binary.
    pub edb_predicates: usize,
    /// Number of IDB predicates (named `q0`, `q1`, …), all binary; `q0` is
    /// the goal.
    pub idb_predicates: usize,
    /// Number of rules to generate.
    pub rules: usize,
    /// Maximum number of body atoms per rule.
    pub max_body_atoms: usize,
    /// Maximum number of distinct variables per rule.
    pub max_variables: usize,
    /// Probability that a generated body atom is an IDB atom (recursion).
    pub idb_probability: f64,
}

impl Default for RandomProgramConfig {
    fn default() -> Self {
        RandomProgramConfig {
            edb_predicates: 2,
            idb_predicates: 2,
            rules: 4,
            max_body_atoms: 3,
            max_variables: 4,
            idb_probability: 0.3,
        }
    }
}

/// Generate a random binary-predicate Datalog program.  Every rule is made
/// safe by construction: head variables are drawn from the body variables.
pub fn random_program(config: &RandomProgramConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rules = Vec::new();
    let idb: Vec<Pred> = (0..config.idb_predicates.max(1))
        .map(|i| Pred::new(&format!("q{i}")))
        .collect();
    let edb: Vec<Pred> = (0..config.edb_predicates.max(1))
        .map(|i| Pred::new(&format!("e{i}")))
        .collect();
    let vars: Vec<Var> = (0..config.max_variables.max(2))
        .map(|i| Var::new(&format!("V{i}")))
        .collect();

    for rule_index in 0..config.rules {
        let n_body = rng.random_range(1..=config.max_body_atoms.max(1));
        let mut body = Vec::new();
        for _ in 0..n_body {
            let pred = if rng.random_bool(config.idb_probability) {
                idb[rng.random_range(0..idb.len())]
            } else {
                edb[rng.random_range(0..edb.len())]
            };
            let t1 = Term::Var(vars[rng.random_range(0..vars.len())]);
            let t2 = Term::Var(vars[rng.random_range(0..vars.len())]);
            body.push(Atom::new(pred, vec![t1, t2]));
        }
        // Choose head variables among the body variables to keep rules safe.
        let body_vars: Vec<Var> = {
            let mut seen = std::collections::BTreeSet::new();
            body.iter()
                .flat_map(|a| a.variables())
                .filter(|v| seen.insert(*v))
                .collect()
        };
        let head_pred = idb[rule_index % idb.len()];
        let h1 = body_vars[rng.random_range(0..body_vars.len())];
        let h2 = body_vars[rng.random_range(0..body_vars.len())];
        rules.push(Rule::new(
            Atom::new(head_pred, vec![Term::Var(h1), Term::Var(h2)]),
            body,
        ));
    }
    // Guarantee at least one exit rule for the goal predicate so the program
    // is not vacuously empty.
    rules.push(Rule::new(
        Atom::new(idb[0], vec![Term::Var(vars[0]), Term::Var(vars[1])]),
        vec![Atom::new(
            edb[0],
            vec![Term::Var(vars[0]), Term::Var(vars[1])],
        )],
    ));
    Program::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::validate::{validate, Safety};

    #[test]
    fn transitive_closure_program_shape() {
        let p = transitive_closure("e", "e");
        assert!(p.is_recursive() && p.is_linear());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn dist_program_is_nonrecursive_and_correct() {
        let p = dist_program(3);
        assert!(p.is_nonrecursive());
        // On a chain of length 8, dist3(c0, c8) must hold (8 = 2^3).
        let db = chain_database("e", 8);
        let r = evaluate(&p, &db);
        assert!(r.database.contains(&Fact::app("dist3", ["c0", "c8"])));
        assert_eq!(r.relation(dist_goal(3)).len(), 1);
    }

    #[test]
    fn dist_le_program_matches_at_most_semantics() {
        let p = dist_le_program(2);
        assert!(p.is_nonrecursive());
        let db = chain_database("e", 5);
        let r = evaluate(&p, &db);
        // dist2 = paths of length ≤ 4: includes (c0, c3) and (c0, c0).
        assert!(r.database.contains(&Fact::app("dist2", ["c0", "c3"])));
        assert!(r.database.contains(&Fact::app("dist2", ["c0", "c0"])));
        assert!(!r.database.contains(&Fact::app("dist2", ["c0", "c5"])));
    }

    #[test]
    fn equal_program_requires_matching_labels() {
        let p = equal_program(1);
        assert!(p.is_nonrecursive());
        let mut db = chain_database("e", 4);
        for i in 0..4 {
            db.insert(Fact::app("zero", [format!("c{i}").as_str()]));
        }
        let r = evaluate(&p, &db);
        // Paths 0→2 and 1→3 of length 2 with all-zero labels.
        assert!(r
            .database
            .contains(&Fact::app("equal1", ["c0", "c2", "c1", "c3"])));
    }

    #[test]
    fn word_program_is_linear_nonrecursive() {
        let p = word_program(4);
        assert!(p.is_nonrecursive());
        assert!(p.is_linear());
        assert_eq!(p.len(), 2 + 3 * 2);
    }

    #[test]
    fn chain_program_and_database_sizes() {
        assert_eq!(chain_program(5).len(), 6);
        assert_eq!(chain_database("e", 7).len(), 7);
        assert_eq!(cycle_database("e", 7).len(), 7);
    }

    #[test]
    fn random_program_is_safe_and_reproducible() {
        let config = RandomProgramConfig::default();
        let p1 = random_program(&config, 42);
        let p2 = random_program(&config, 42);
        assert_eq!(p1, p2, "same seed must give the same program");
        assert!(validate(&p1, Safety::Strict).is_empty());
    }

    #[test]
    fn random_database_is_reproducible_and_respects_arity() {
        let config = RandomDatabaseConfig {
            domain_size: 5,
            relations: vec![("e".into(), 2, 20), ("l".into(), 1, 5)],
        };
        let d1 = random_database(&config, 7);
        let d2 = random_database(&config, 7);
        assert_eq!(d1, d2);
        assert!(d1.relation(Pred::new("e")).iter().all(|t| t.len() == 2));
        assert!(d1.relation(Pred::new("l")).iter().all(|t| t.len() == 1));
    }

    #[test]
    fn different_seeds_differ() {
        let config = RandomDatabaseConfig {
            domain_size: 50,
            relations: vec![("e".into(), 2, 30)],
        };
        assert_ne!(random_database(&config, 1), random_database(&config, 2));
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let config = RandomProgramConfig::default();
        // A handful of seed pairs, not just one, so a stuck generator that
        // only varies on some seeds still fails.
        for seed in [0u64, 1, 42, 1000] {
            assert_ne!(
                random_program(&config, seed),
                random_program(&config, seed + 1),
                "seed {seed}"
            );
        }
    }
}
