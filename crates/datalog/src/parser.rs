//! Recursive-descent parser for the textual Datalog syntax.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program  ::= rule*
//! rule     ::= atom ( ":-" atom ("," atom)* )? "."
//! fact     ::= atom "."                    (ground atoms only; see parse_database)
//! atom     ::= name ( "(" term ("," term)* ")" )?
//! term     ::= VARIABLE | SYMBOL
//! ```
//!
//! `parse_program` parses a whole program, `parse_rule` a single rule,
//! `parse_atom` a single atom, and `parse_database` a list of ground facts.

use crate::atom::{Atom, Fact, Pred};
use crate::database::Database;
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::program::Program;
use crate::rule::Rule;
use crate::term::{Constant, Term, Var};

/// Parse a Datalog program from text.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(input)?;
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.rule()?);
    }
    Ok(Program::new(rules))
}

/// Parse a single rule (terminated by `.`).
pub fn parse_rule(input: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(input)?;
    let rule = p.rule()?;
    p.expect_eof()?;
    Ok(rule)
}

/// Parse a single atom.
pub fn parse_atom(input: &str) -> Result<Atom, ParseError> {
    let mut p = Parser::new(input)?;
    let atom = p.atom()?;
    p.expect_eof()?;
    Ok(atom)
}

/// Parse a database: a sequence of ground facts, each terminated by `.`.
pub fn parse_database(input: &str) -> Result<Database, ParseError> {
    let mut p = Parser::new(input)?;
    let mut db = Database::new();
    while !p.at_eof() {
        let line = p.peek_line();
        let atom = p.atom()?;
        p.expect(TokenKind::Period)?;
        match atom.to_fact() {
            Some(fact) => {
                db.insert(fact);
            }
            None => {
                return Err(ParseError::new(
                    line,
                    format!("database fact `{atom}` contains variables"),
                ))
            }
        }
    }
    Ok(db)
}

/// Parse a single ground fact.
pub fn parse_fact(input: &str) -> Result<Fact, ParseError> {
    let mut p = Parser::new(input)?;
    let line = p.peek_line();
    let atom = p.atom()?;
    if p.check(TokenKind::Period) {
        p.advance();
    }
    p.expect_eof()?;
    atom.to_fact()
        .ok_or_else(|| ParseError::new(line, format!("fact `{atom}` contains variables")))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: TokenKind) -> bool {
        *self.peek() == kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                self.peek_line(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError::new(
                self.peek_line(),
                format!("expected end of input, found {}", self.peek()),
            ))
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        if self.check(TokenKind::Period) {
            self.advance();
            return Ok(Rule::fact(head));
        }
        self.expect(TokenKind::Implies)?;
        // An empty body before the period (e.g. `dist0(X, X) :- .`) is
        // accepted and equivalent to a fact-rule.
        if self.check(TokenKind::Period) {
            self.advance();
            return Ok(Rule::fact(head));
        }
        let mut body = vec![self.atom()?];
        while self.check(TokenKind::Comma) {
            self.advance();
            body.push(self.atom()?);
        }
        self.expect(TokenKind::Period)?;
        Ok(Rule::new(head, body))
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let line = self.peek_line();
        let name = match self.advance() {
            TokenKind::Symbol(s) => s,
            other => {
                return Err(ParseError::new(
                    line,
                    format!("expected a predicate name, found {other}"),
                ))
            }
        };
        let pred = Pred::new(&name);
        if !self.check(TokenKind::LParen) {
            // 0-ary atom such as the goal predicate `c` in Section 5.3.
            return Ok(Atom::new(pred, Vec::new()));
        }
        self.advance();
        let mut terms = Vec::new();
        if !self.check(TokenKind::RParen) {
            terms.push(self.term()?);
            while self.check(TokenKind::Comma) {
                self.advance();
                terms.push(self.term()?);
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Atom::new(pred, terms))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let line = self.peek_line();
        match self.advance() {
            TokenKind::Variable(name) => Ok(Term::Var(Var::new(&name))),
            TokenKind::Symbol(name) => Ok(Term::Const(Constant::new(&name))),
            other => Err(ParseError::new(
                line,
                format!("expected a term, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_transitive_closure_program() {
        let p = parse_program(
            "p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- ep(X, Y).",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.is_recursive());
        assert!(p.is_linear());
        assert_eq!(p.rules()[0].to_string(), "p(X, Y) :- e(X, Z), p(Z, Y).");
    }

    #[test]
    fn parses_example_1_1() {
        let p = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), buys(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.idb_predicates().len(), 1);
        assert_eq!(p.edb_predicates().len(), 2);
    }

    #[test]
    fn parses_facts_and_empty_bodies() {
        let p = parse_program("dist0(X, X). d(a, b) :- .").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules()[0].body.is_empty());
        assert!(p.rules()[1].body.is_empty());
    }

    #[test]
    fn parses_zero_ary_atoms() {
        let p = parse_program("c :- bit(X, Y, Z), start(Z).").unwrap();
        assert_eq!(p.rules()[0].head.arity(), 0);
        assert_eq!(p.rules()[0].head.pred, Pred::new("c"));
    }

    #[test]
    fn display_parse_round_trip() {
        let text = "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- ep(X, Y).\n";
        let p = parse_program(text).unwrap();
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn parse_atom_and_fact() {
        let a = parse_atom("e(X, b)").unwrap();
        assert_eq!(a.to_string(), "e(X, b)");
        let f = parse_fact("e(a, b).").unwrap();
        assert_eq!(f, Fact::app("e", ["a", "b"]));
        assert!(parse_fact("e(X, b).").is_err());
    }

    #[test]
    fn parse_database_accepts_only_ground_facts() {
        let db = parse_database("e(a, b). e(b, c). likes(a, widget).").unwrap();
        assert_eq!(db.len(), 3);
        assert!(parse_database("e(a, B).").is_err());
    }

    #[test]
    fn constants_and_variables_are_distinguished() {
        let r = parse_rule("p(X, a) :- e(X, a).").unwrap();
        assert!(r.head.terms[0].is_var());
        assert!(r.head.terms[1].is_const());
    }

    #[test]
    fn missing_period_is_an_error() {
        assert!(parse_program("p(X) :- e(X)").is_err());
    }

    #[test]
    fn garbage_after_rule_is_an_error() {
        assert!(parse_rule("p(X) :- e(X). extra").is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_program("p(X) :- e(X).\nq(X) :- ,").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn quoted_constants_are_constants() {
        let r = parse_rule("p(X) :- name(X, 'Alice Smith').").unwrap();
        assert!(r.body[0].terms[1].is_const());
        assert_eq!(r.body[0].terms[1].to_string(), "Alice Smith");
    }
}
