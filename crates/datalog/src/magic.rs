//! Magic-set rewriting of an adorned program, in the classic
//! Beeri–Ramakrishnan style: rewrite the program so that a bottom-up
//! fixpoint derives only facts relevant to a given goal pattern.
//!
//! # The rewrite
//!
//! Input: an [`AdornedProgram`] (see [`crate::adorn`]) for a goal pattern
//! `g(t̄)` whose constant positions are bound.  For every adorned predicate
//! `p^a` the rewrite introduces two interned predicates whose names contain
//! `#` — a character the parser rejects in identifiers, so the generated
//! names can never collide with user predicates (the same trick the
//! canonical-database freezing uses with its `?`-prefixed constants):
//!
//! * the **guarded** predicate `p#a`, with p's arity, holding the facts of
//!   `p` derived under call pattern `a`;
//! * the **magic** predicate `m#p#a`, with one position per *bound*
//!   position of `a`, holding the bindings with which `p^a` is called.
//!
//! The rewritten program contains, for the goal adornment `a₀`:
//!
//! * the **seed fact** `m#g#a₀(c̄).` where `c̄` are the constants at the
//!   bound positions of the goal pattern;
//! * for every adorned rule `p^a(ū) :- B₁, …, Bₙ` (body already in SIPS
//!   order) the **guarded rule**
//!   `p#a(ū) :- m#p#a(bound(ū)), B₁', …, Bₙ'`,
//!   where `Bᵢ'` is `Bᵢ` with IDB atoms `q^b(v̄)` renamed to `q#b(v̄)`;
//! * for every IDB body atom `Bᵢ = q^b(v̄)` of such a rule the **magic
//!   rule** `m#q#b(bound(v̄)) :- m#p#a(bound(ū)), B₁', …, B_{i-1}'` —
//!   "if `p^a` is called with these bindings and the body prefix before
//!   `Bᵢ` matches, then `q^b` is called with the bindings `b` marks".
//!
//! # Goal equivalence
//!
//! **Claim.**  Let `D` be a database with no facts for IDB predicates, `Π`
//! the original program, and `Πᵐ` the rewrite for goal pattern `g(t̄)`.
//! Then for every tuple `c̄` matching the pattern:
//! `g(c̄) ∈ Π(D)  ⟺  g#a₀(c̄) ∈ Πᵐ(D)`.
//!
//! *Soundness (⇐).*  By induction on the derivation order of `Πᵐ(D)`:
//! every guarded fact `p#a(c̄) ∈ Πᵐ(D)` satisfies `p(c̄) ∈ Π(D)`.  A
//! guarded rule is its original rule with IDB atoms renamed and one magic
//! guard prepended; by the induction hypothesis each guarded body fact
//! maps to an original fact, EDB body atoms match `D` directly, and
//! dropping the guard leaves a valid instance of the original rule.
//!
//! *Completeness (⇒).*  Call a pair `(p, σ)` of a predicate and a binding
//! of the bound positions of some adornment `a` *relevant* if `m#p#a(σ) ∈
//! Πᵐ(D)`.  By induction on the fixpoint stage `i` of `Π(D)` one shows:
//! for every fact `p(c̄) ∈ Π^i(D)` and every adornment `a` of `p` with
//! `m#p#a(bound_a(c̄)) ∈ Πᵐ(D)`, also `p#a(c̄) ∈ Πᵐ(D)`.  Take the rule
//! instance that derived `p(c̄)` at stage `i`.  Its head bindings extend
//! to the whole rule; walk the body in SIPS order.  The magic rules fire
//! left to right along exactly this prefix chain: the guard `m#p#a` holds
//! by assumption, every earlier body atom holds in `Πᵐ(D)` (EDB atoms
//! directly, IDB atoms by the inner induction — their magic fact is
//! derived by the magic rule for that position, whose body is the same
//! already-established prefix), so each IDB body atom `q^b` first becomes
//! relevant and then, by the stage-(i−1) hypothesis, its guarded fact is
//! derived.  With the full body available the guarded rule fires and
//! derives `p#a(c̄)`.  The seed fact makes `(g, bound(t̄))` relevant, so
//! every `g(c̄) ∈ Π(D)` matching the pattern yields `g#a₀(c̄) ∈ Πᵐ(D)`. ∎
//!
//! The two hypotheses of the claim are exactly what
//! [`magic_applicable`] checks before [`crate::eval::evaluate_goal_with`]
//! commits to the rewrite:
//!
//! * **no EDB facts for IDB predicates** — the rewrite renames IDB body
//!   atoms to guarded names, so base facts stored under an IDB predicate
//!   would be invisible to the rewritten program;
//! * **no non-ground empty-body rules** — `p(X, X).` is evaluated by
//!   instantiation over the active domain, but its guarded form has a
//!   non-empty body (the magic guard) and an unsafe head, so the rewrite
//!   would silently drop its facts.
//!
//! When either condition fails the caller falls back to the plain indexed
//! fixpoint; the verdict is unchanged, only the pruning is lost.

use crate::adorn::{AdornedProgram, Adornment};
use crate::atom::{Atom, Pred};
use crate::database::Database;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::Term;

/// The result of the magic rewrite.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten rules: seed fact, magic rules, guarded rules.
    pub program: Program,
    /// The guarded goal predicate `g#a₀`; its relation in the rewritten
    /// fixpoint carries the goal facts relevant to the pattern.
    pub goal: Pred,
    /// The original goal predicate.
    pub original_goal: Pred,
}

/// The guarded name `p#a` of an adorned predicate.
fn guarded_pred(pred: Pred, adornment: &Adornment) -> Pred {
    Pred::new(&format!("{}#{}", pred.name(), adornment))
}

/// The magic name `m#p#a` of an adorned predicate.
fn magic_pred(pred: Pred, adornment: &Adornment) -> Pred {
    Pred::new(&format!("m#{}#{}", pred.name(), adornment))
}

/// The terms at the bound positions of `atom` under `adornment`.
fn bound_terms(atom: &Atom, adornment: &Adornment) -> Vec<Term> {
    atom.terms
        .iter()
        .zip(adornment.flags())
        .filter(|&(_, &bound)| bound)
        .map(|(&t, _)| t)
        .collect()
}

/// The magic atom `m#p#a(bound(t̄))` for an adorned atom occurrence.
fn magic_atom(atom: &Atom, adornment: &Adornment) -> Atom {
    Atom::new(
        magic_pred(atom.pred, adornment),
        bound_terms(atom, adornment),
    )
}

/// Can the magic rewrite serve this (program, goal, database) triple?
/// See the module docs for why each condition is required; callers fall
/// back to the plain fixpoint when this returns `false`.
pub fn magic_applicable(program: &Program, goal: Pred, edb: &Database) -> bool {
    program.is_idb(goal)
        && program
            .rules()
            .iter()
            .all(|r| !r.body.is_empty() || r.head.is_ground())
        && edb.predicates().all(|p| !program.is_idb(p))
}

/// Rewrite an adorned program into its magic form.  The returned program
/// is an ordinary Datalog program evaluable by any [`crate::eval`]
/// strategy; [`crate::eval::evaluate_goal_with`] runs it through the
/// indexed engine and projects the guarded goal relation back onto the
/// original goal predicate.
pub fn magic_rewrite(adorned: &AdornedProgram) -> MagicProgram {
    let mut rules: Vec<Rule> = Vec::new();

    // Seed: the goal's bound constants, as an empty-body ground rule.
    let seed = magic_atom(&adorned.goal_pattern, &adorned.goal_adornment);
    rules.push(Rule::fact(seed));

    // Magic rules first (deriving call bindings), then guarded rules —
    // the order is cosmetic (fixpoints are order-independent) but keeps
    // the rewritten program readable in debug output.
    let mut guarded: Vec<Rule> = Vec::new();
    for rule in &adorned.rules {
        let guard = magic_atom(&rule.head, &rule.head_adornment);
        let mut prefix: Vec<Atom> = vec![guard.clone()];
        for body_atom in &rule.body {
            let rewritten = match &body_atom.adornment {
                Some(adornment) => Atom::new(
                    guarded_pred(body_atom.atom.pred, adornment),
                    body_atom.atom.terms.clone(),
                ),
                None => body_atom.atom.clone(),
            };
            if let Some(adornment) = &body_atom.adornment {
                let magic_rule = Rule::new(magic_atom(&body_atom.atom, adornment), prefix.clone());
                if !rules.contains(&magic_rule) {
                    rules.push(magic_rule);
                }
            }
            prefix.push(rewritten);
        }
        let head = Atom::new(
            guarded_pred(rule.head.pred, &rule.head_adornment),
            rule.head.terms.clone(),
        );
        let guarded_rule = Rule::new(head, prefix);
        if !guarded.contains(&guarded_rule) {
            guarded.push(guarded_rule);
        }
    }
    rules.extend(guarded);

    MagicProgram {
        program: Program::new(rules),
        goal: guarded_pred(adorned.goal(), &adorned.goal_adornment),
        original_goal: adorned.goal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::{adorn_program, Sips};
    use crate::atom::Fact;
    use crate::eval::evaluate;
    use crate::generate::{chain_database, transitive_closure};
    use crate::parser::parse_program;
    use crate::term::Constant;

    fn pattern(text: &str) -> Atom {
        crate::parser::parse_rule(&format!("{text} :- {text}."))
            .unwrap()
            .head
    }

    fn rewrite(program: &Program, goal: &Atom) -> MagicProgram {
        magic_rewrite(&adorn_program(program, goal, Sips::default()))
    }

    #[test]
    fn rewritten_names_are_unparseable_and_goal_is_guarded() {
        let program = transitive_closure("e", "e");
        let magic = rewrite(&program, &pattern("p(c0, c5)"));
        assert_eq!(magic.goal.name(), "p#bb");
        assert_eq!(magic.original_goal, Pred::new("p"));
        assert!(crate::parser::parse_program(&magic.program.to_string()).is_err());
        // The seed fact is present and ground.
        let seed = &magic.program.rules()[0];
        assert!(seed.body.is_empty());
        assert_eq!(seed.head.pred.name(), "m#p#bb");
        assert!(seed.head.is_ground());
    }

    #[test]
    fn fully_bound_chain_query_derives_a_linear_fixpoint() {
        // p(c0, c8) over a chain of 8: the full TC fixpoint has 36 p-facts;
        // the magic fixpoint only walks forward from c0.
        let program = transitive_closure("e", "e");
        let db = chain_database("e", 8);
        let full = evaluate(&program, &db);
        assert_eq!(full.relation(Pred::new("p")).len(), 36);
        let magic = rewrite(&program, &pattern("p(c0, c8)"));
        let result = evaluate(&magic.program, &db);
        let tuple = vec![Constant::new("c0"), Constant::new("c8")];
        assert!(result.relation(magic.goal).contains(&tuple));
        // Only suffixes of the c0-walk are derived: 8 guarded facts.
        assert_eq!(result.relation(magic.goal).len(), 8);
        assert!(result.stats.derived_facts < full.stats.derived_facts);
    }

    #[test]
    fn magic_agrees_with_full_evaluation_on_the_pattern() {
        let program = parse_program(
            "p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).\n\
             p(X, Y) :- f(X, Y).",
        )
        .unwrap();
        let mut db = chain_database("e", 5);
        db.insert(Fact::app("f", ["c2", "c0"]));
        let full = evaluate(&program, &db);
        for target in ["c0", "c1", "c3", "c9"] {
            let goal = pattern(&format!("p(c2, {target})"));
            let magic = rewrite(&program, &goal);
            let result = evaluate(&magic.program, &db);
            let tuple = vec![Constant::new("c2"), Constant::new(target)];
            assert_eq!(
                result.relation(magic.goal).contains(&tuple),
                full.relation(Pred::new("p")).contains(&tuple),
                "target {target}"
            );
        }
    }

    #[test]
    fn applicability_rejects_the_documented_fallback_cases() {
        let program = transitive_closure("e", "e");
        let db = chain_database("e", 3);
        assert!(magic_applicable(&program, Pred::new("p"), &db));
        // Goal not an IDB predicate.
        assert!(!magic_applicable(&program, Pred::new("e"), &db));
        // EDB facts stored under an IDB predicate (canonical databases of
        // queries that mention the goal do this).
        let mut idb_facts = db.clone();
        idb_facts.insert(Fact::app("p", ["c9", "c9"]));
        assert!(!magic_applicable(&program, Pred::new("p"), &idb_facts));
        // Non-ground empty-body rule (domain-instantiated reflexivity).
        let mut rules = program.rules().to_vec();
        rules.push(Rule::fact(Atom::app("p", ["X", "X"])));
        let with_reflexive = Program::new(rules);
        assert!(!magic_applicable(&with_reflexive, Pred::new("p"), &db));
        // Ground empty-body rules are fine.
        let mut rules = program.rules().to_vec();
        rules.push(Rule::fact(Atom::app("p", ["c7", "c7"])));
        let with_ground = Program::new(rules);
        assert!(magic_applicable(&with_ground, Pred::new("p"), &db));
    }

    #[test]
    fn duplicate_magic_rules_are_emitted_once() {
        // Two rules with the same head adornment and the same first body
        // atom produce the same magic rule for it.
        let program = parse_program(
            "p(X, Y) :- q(X, Z), r(Z, Y).\n\
             p(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let magic = rewrite(&program, &pattern("p(c0, Y)"));
        let magic_rule_count = magic
            .program
            .rules()
            .iter()
            .filter(|r| r.head.pred.name().starts_with("m#q"))
            .count();
        assert_eq!(magic_rule_count, 1);
    }
}
