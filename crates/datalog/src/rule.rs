//! Horn rules.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::{Atom, Pred};
use crate::substitution::Substitution;
use crate::term::Var;

/// A Horn rule `head :- body₁, …, bodyₙ.`
///
/// A rule with an empty body is a (possibly non-ground) unconditional rule;
/// the paper uses such rules in Example 6.2 (`dist0(x, x) :-`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (conjunction).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Construct a rule from a head and body.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule { head, body }
    }

    /// A fact-rule with an empty body.
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// The predicate at the head of the rule.
    pub fn head_pred(&self) -> Pred {
        self.head.pred
    }

    /// All distinct variables occurring anywhere in the rule, in first
    /// occurrence order (head first, then body left to right).
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self
            .head
            .variables()
            .chain(self.body.iter().flat_map(|a| a.variables()))
        {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// All distinct variables occurring in the body.
    pub fn body_variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self.body.iter().flat_map(|a| a.variables()) {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Number of distinct variables occurring in atoms whose predicate
    /// satisfies `is_idb` (head or body).  This is `varnum(r)` from
    /// Section 5.1 when `is_idb` selects the IDB predicates of the program.
    pub fn varnum_idb(&self, is_idb: impl Fn(Pred) -> bool) -> usize {
        let mut seen = BTreeSet::new();
        if is_idb(self.head.pred) {
            seen.extend(self.head.variables());
        }
        for atom in &self.body {
            if is_idb(atom.pred) {
                seen.extend(atom.variables());
            }
        }
        seen.len()
    }

    /// The body atoms whose predicate satisfies `is_idb`, with their
    /// positions in the body.
    pub fn idb_body_atoms<'a>(
        &'a self,
        is_idb: impl Fn(Pred) -> bool + 'a,
    ) -> impl Iterator<Item = (usize, &'a Atom)> + 'a {
        self.body
            .iter()
            .enumerate()
            .filter(move |(_, a)| is_idb(a.pred))
    }

    /// The body atoms whose predicate does *not* satisfy `is_idb` (the EDB
    /// atoms), with their positions in the body.
    pub fn edb_body_atoms<'a>(
        &'a self,
        is_idb: impl Fn(Pred) -> bool + 'a,
    ) -> impl Iterator<Item = (usize, &'a Atom)> + 'a {
        self.body
            .iter()
            .enumerate()
            .filter(move |(_, a)| !is_idb(a.pred))
    }

    /// Apply a substitution to every atom of the rule, producing a rule
    /// *instance* (the ρ of the paper's expansion-tree labels).
    pub fn apply(&self, subst: &Substitution) -> Rule {
        Rule {
            head: subst.apply_atom(&self.head),
            body: self.body.iter().map(|a| subst.apply_atom(a)).collect(),
        }
    }

    /// Rename all variables of the rule with fresh names (used when taking a
    /// "fresh copy of a rule" while unfolding, §2.3).  Returns the renamed
    /// rule together with the renaming used.
    pub fn freshen(&self, prefix: &str) -> (Rule, Substitution) {
        let mut subst = Substitution::new();
        for v in self.variables() {
            subst.bind_var(v, crate::term::Term::Var(Var::fresh(prefix)));
        }
        (self.apply(&subst), subst)
    }

    /// True if every head variable also occurs in the body (range
    /// restriction / safety).  Rules with empty bodies are safe only if the
    /// head is ground — except that the paper's Example 6.2 uses
    /// `dist0(x, x) :-` as "true"; such rules are flagged by
    /// [`crate::validate`], which offers a lenient mode.
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: BTreeSet<Var> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().all(|v| body_vars.contains(&v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if self.body.is_empty() {
            return write!(f, ".");
        }
        write!(f, " :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn tc_rule() -> Rule {
        // p(X, Y) :- e(X, Z), p(Z, Y).
        Rule::new(
            Atom::app("p", ["X", "Y"]),
            vec![Atom::app("e", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
        )
    }

    #[test]
    fn display_matches_datalog_syntax() {
        assert_eq!(tc_rule().to_string(), "p(X, Y) :- e(X, Z), p(Z, Y).");
        assert_eq!(
            Rule::fact(Atom::app("dist0", ["X", "X"])).to_string(),
            "dist0(X, X)."
        );
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let vars = tc_rule().variables();
        assert_eq!(vars, vec![Var::new("X"), Var::new("Y"), Var::new("Z")]);
    }

    #[test]
    fn varnum_counts_only_idb_variables() {
        let r = tc_rule();
        let is_idb = |p: Pred| p == Pred::new("p");
        // IDB atoms: head p(X, Y) and body p(Z, Y) → variables {X, Y, Z}.
        assert_eq!(r.varnum_idb(is_idb), 3);
        // If nothing is IDB, no variables are counted.
        assert_eq!(r.varnum_idb(|_| false), 0);
    }

    #[test]
    fn idb_and_edb_body_atoms_partition_the_body() {
        let r = tc_rule();
        let is_idb = |p: Pred| p == Pred::new("p");
        let idb: Vec<usize> = r.idb_body_atoms(is_idb).map(|(i, _)| i).collect();
        let edb: Vec<usize> = r.edb_body_atoms(is_idb).map(|(i, _)| i).collect();
        assert_eq!(idb, vec![1]);
        assert_eq!(edb, vec![0]);
    }

    #[test]
    fn apply_substitution_produces_instance() {
        let r = tc_rule();
        let mut s = Substitution::new();
        s.bind_var(Var::new("Z"), Term::Var(Var::new("X")));
        let inst = r.apply(&s);
        assert_eq!(inst.to_string(), "p(X, Y) :- e(X, X), p(X, Y).");
    }

    #[test]
    fn freshen_renames_all_variables_apart() {
        let r = tc_rule();
        let (fresh, _) = r.freshen("u");
        let orig: BTreeSet<Var> = r.variables().into_iter().collect();
        let new: BTreeSet<Var> = fresh.variables().into_iter().collect();
        assert_eq!(new.len(), orig.len());
        assert!(orig.is_disjoint(&new));
    }

    #[test]
    fn range_restriction() {
        assert!(tc_rule().is_range_restricted());
        let unsafe_rule = Rule::new(Atom::app("p", ["X", "Y"]), vec![Atom::app("e", ["X", "X"])]);
        assert!(!unsafe_rule.is_range_restricted());
    }
}
