//! Tokenizer for the textual Datalog syntax.
//!
//! The concrete syntax follows the common Prolog-style convention used by
//! the paper's examples:
//!
//! ```text
//! buys(X, Y) :- likes(X, Y).
//! buys(X, Y) :- trendy(X), buys(Z, Y).
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! everything else (lowercase identifiers, digits, quoted strings) is a
//! constant or predicate name.  `%` and `#` start a comment that runs to the
//! end of the line.

use std::fmt;

use crate::error::ParseError;

/// A lexical token with its position (byte offset) in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
    /// Line number (1-based) for error messages.
    pub line: usize,
}

/// The kinds of tokens produced by the lexer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier starting with an uppercase letter or underscore.
    Variable(String),
    /// An identifier starting with a lowercase letter or digit, or a quoted
    /// string.
    Symbol(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `:-`
    Implies,
    /// `|` — separates disjuncts in a union of conjunctive queries.
    Pipe,
    /// `?-` — introduces a query head in CQ syntax.
    Query,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Variable(s) => write!(f, "variable `{s}`"),
            TokenKind::Symbol(s) => write!(f, "symbol `{s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Period => write!(f, "`.`"),
            TokenKind::Implies => write!(f, "`:-`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Query => write!(f, "`?-`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenize an input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '%' | '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Period,
                    offset: i,
                    line,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: i,
                    line,
                });
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        offset: i,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        line,
                        format!(
                            "expected `:-`, found `:{}`",
                            bytes.get(i + 1).map(|&b| b as char).unwrap_or(' ')
                        ),
                    ));
                }
            }
            '?' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token {
                        kind: TokenKind::Query,
                        offset: i,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(line, "expected `?-`".to_string()));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    if bytes[j] == b'\n' {
                        return Err(ParseError::new(
                            line,
                            "unterminated quoted constant".to_string(),
                        ));
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(
                        line,
                        "unterminated quoted constant".to_string(),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Symbol(input[start..j].to_string()),
                    offset: i,
                    line,
                });
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' || cj == '\'' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let kind = if c.is_ascii_uppercase() || c == '_' {
                    TokenKind::Variable(text.to_string())
                } else {
                    TokenKind::Symbol(text.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                    line,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_rule() {
        let ks = kinds("p(X, y) :- e(X, y).");
        assert_eq!(
            ks,
            vec![
                TokenKind::Symbol("p".into()),
                TokenKind::LParen,
                TokenKind::Variable("X".into()),
                TokenKind::Comma,
                TokenKind::Symbol("y".into()),
                TokenKind::RParen,
                TokenKind::Implies,
                TokenKind::Symbol("e".into()),
                TokenKind::LParen,
                TokenKind::Variable("X".into()),
                TokenKind::Comma,
                TokenKind::Symbol("y".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("% a comment\np(X). # another\n");
        assert_eq!(ks.len(), 6); // p ( X ) . EOF
    }

    #[test]
    fn quoted_constants_keep_their_spelling() {
        let ks = kinds("p('Hello World').");
        assert!(matches!(&ks[2], TokenKind::Symbol(s) if s == "Hello World"));
    }

    #[test]
    fn underscore_starts_a_variable() {
        let ks = kinds("p(_x).");
        assert!(matches!(&ks[2], TokenKind::Variable(s) if s == "_x"));
    }

    #[test]
    fn numbers_are_symbols() {
        let ks = kinds("p(42).");
        assert!(matches!(&ks[2], TokenKind::Symbol(s) if s == "42"));
    }

    #[test]
    fn pipe_and_query_tokens() {
        let ks = kinds("?- p(X) | q(X).");
        assert_eq!(ks[0], TokenKind::Query);
        assert!(ks.contains(&TokenKind::Pipe));
    }

    #[test]
    fn lexical_errors_report_line_numbers() {
        let err = tokenize("p(X).\nq(X) :- &").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(tokenize("p('oops).").is_err());
    }

    #[test]
    fn lone_colon_is_an_error() {
        assert!(tokenize("p(X) : q(X).").is_err());
    }
}
