//! Program statistics.
//!
//! These are the size parameters in which the paper's complexity bounds are
//! stated; the bench harness records them next to every measurement so that
//! EXPERIMENTS.md can relate measured growth to the predicted bounds.

use crate::program::Program;

/// Summary statistics of a Datalog program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramStats {
    /// Number of rules.
    pub rules: usize,
    /// Number of IDB predicates.
    pub idb_predicates: usize,
    /// Number of EDB predicates.
    pub edb_predicates: usize,
    /// Total number of atoms (heads + bodies).
    pub atoms: usize,
    /// Total number of term positions (the paper's "size of Π").
    pub size: usize,
    /// Maximum arity over all predicates.
    pub max_arity: usize,
    /// Number of distinct variables.
    pub variables: usize,
    /// `varnum(Π)` (Section 5.1): twice the maximum number of variables in
    /// IDB atoms of any rule.
    pub varnum: usize,
    /// Is the program recursive?
    pub recursive: bool,
    /// Is the program linear (≤ 1 recursive subgoal per rule)?
    pub linear: bool,
}

impl ProgramStats {
    /// Compute statistics for a program.
    pub fn of(program: &Program) -> Self {
        ProgramStats {
            rules: program.len(),
            idb_predicates: program.idb_predicates().len(),
            edb_predicates: program.edb_predicates().len(),
            atoms: program.atom_count(),
            size: program.size(),
            max_arity: program.arities().values().copied().max().unwrap_or(0),
            variables: program.variables().len(),
            varnum: program.varnum(),
            recursive: program.is_recursive(),
            linear: program.is_linear(),
        }
    }
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rules={} idb={} edb={} atoms={} size={} max_arity={} vars={} varnum={} recursive={} linear={}",
            self.rules,
            self.idb_predicates,
            self.edb_predicates,
            self.atoms,
            self.size,
            self.max_arity,
            self.variables,
            self.varnum,
            self.recursive,
            self.linear
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{dist_program, transitive_closure};

    #[test]
    fn stats_of_transitive_closure() {
        let s = ProgramStats::of(&transitive_closure("e", "ep"));
        assert_eq!(s.rules, 2);
        assert_eq!(s.idb_predicates, 1);
        assert_eq!(s.edb_predicates, 2);
        assert_eq!(s.max_arity, 2);
        assert!(s.recursive);
        assert!(s.linear);
        assert_eq!(s.varnum, 6);
    }

    #[test]
    fn stats_of_dist_family_grow_linearly() {
        let s3 = ProgramStats::of(&dist_program(3));
        let s6 = ProgramStats::of(&dist_program(6));
        assert!(!s3.recursive);
        assert_eq!(s3.rules, 4);
        assert_eq!(s6.rules, 7);
        assert!(s6.size > s3.size);
    }

    #[test]
    fn display_mentions_every_field() {
        let s = ProgramStats::of(&transitive_closure("e", "e"));
        let text = s.to_string();
        for key in ["rules=", "idb=", "varnum=", "linear="] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
