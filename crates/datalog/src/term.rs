//! Terms: variables and constants.
//!
//! The paper's core constructions (Sections 2–5) are constant-free, but
//! Remark 5.14 observes that constants are easily accommodated by adjusting
//! the definition of containment mappings.  We therefore support constants
//! throughout the library.

use std::fmt;

use crate::intern::{self, Sym};

/// A Datalog variable.
///
/// Variables are identified by their interned name.  By convention the
/// parser treats identifiers starting with an uppercase letter or `_` as
/// variables (Prolog convention), but variables constructed
/// programmatically may have any name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Sym);

/// A Datalog constant (a database value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constant(pub Sym);

/// A term is either a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant occurrence.
    Const(Constant),
}

impl Var {
    /// Create (or look up) a variable with the given name.
    pub fn new(name: &str) -> Self {
        Var(intern::intern(name))
    }

    /// A fresh variable whose name has not been used before in this process.
    pub fn fresh(prefix: &str) -> Self {
        Var(intern::fresh(prefix))
    }

    /// The variable's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }

    /// The canonical i-th variable `x{i}` of the bounded variable set
    /// `var(Π)` used by proof trees (Section 5.1).  Indices are 1-based to
    /// match the paper's notation `x1, …, x_varnum(Π)`.
    pub fn canonical(i: usize) -> Self {
        Var::new(&format!("x{i}"))
    }
}

impl Constant {
    /// Create (or look up) a constant with the given name.
    pub fn new(name: &str) -> Self {
        Constant(intern::intern(name))
    }

    /// The constant's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }

    /// Constant formed from an integer, used heavily by generators.
    pub fn from_usize(i: usize) -> Self {
        Constant::new(&format!("c{i}"))
    }
}

impl Term {
    /// Is this term a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Const(c)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_with_same_name_are_equal() {
        assert_eq!(Var::new("X"), Var::new("X"));
        assert_ne!(Var::new("X"), Var::new("Y"));
    }

    #[test]
    fn canonical_variables_follow_paper_naming() {
        assert_eq!(Var::canonical(1).name(), "x1");
        assert_eq!(Var::canonical(7).name(), "x7");
    }

    #[test]
    fn term_accessors() {
        let v = Term::from(Var::new("X"));
        let c = Term::from(Constant::new("a"));
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.as_var(), Some(Var::new("X")));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(Constant::new("a")));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Term::from(Var::new("Abc")).to_string(), "Abc");
        assert_eq!(Term::from(Constant::new("a1")).to_string(), "a1");
    }

    #[test]
    fn fresh_variables_differ() {
        assert_ne!(Var::fresh("Z"), Var::fresh("Z"));
    }

    #[test]
    fn debug_formatting_preserves_the_interned_name() {
        let t = Term::from(Var::new("RoundTrip"));
        assert!(format!("{t:?}").contains("RoundTrip"));
    }
}
