//! Global string interner.
//!
//! Every identifier that appears in a Datalog program — predicate names,
//! variable names, and constant names — is interned into a process-wide
//! table and referred to by a compact [`Sym`] handle.  Interning keeps the
//! core algorithms (containment-mapping search, proof-tree automata
//! construction) free of string comparisons and allocations, which the
//! performance guide for this codebase calls out as the dominant avoidable
//! cost in symbolic database code.
//!
//! The table only ever grows; symbols are never freed.  This is the right
//! trade-off for a decision-procedure library: the set of distinct
//! identifiers is bounded by the input programs plus a bounded number of
//! generated variables (`var(Π)` in the paper is at most twice the largest
//! rule), so memory usage stays proportional to the input size.
//!
//! **Concurrency.**  The server runs many decisions in parallel, and every
//! one of them resolves and interns symbols constantly (parsing,
//! canonicalisation, rendering).  Both hot paths are therefore designed to
//! scale across threads:
//!
//! * [`Sym::as_str`] is **lock-free** — the reverse table is an
//!   append-only array of chunks behind `OnceLock`s, so resolving is two
//!   atomic loads and an index;
//! * interning an **already-known** string takes only a read lock; the
//!   write lock is reached exclusively by the first thread to see a new
//!   identifier.
//!
//! (These used to be plain `Mutex`es, which serialised every worker of the
//! server through two global locks and capped warm-cache throughput at a
//! single core.)

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// An interned string.
///
/// `Sym` is a cheap, `Copy` handle (4 bytes) that can be compared, hashed,
/// and ordered in O(1).  Two `Sym`s are equal iff the strings they intern are
/// equal.  The ordering is *creation order*, not lexicographic; callers that
/// need lexicographic order should resolve the symbols first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Numeric id of the symbol (stable for the lifetime of the process).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Resolve the symbol back to its string.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Chunk sizing of the lock-free reverse table: chunk `k` holds
/// `FIRST_CHUNK << k` entries, so 23 chunks cover every possible `u32` id
/// while the first allocation stays small.
const FIRST_CHUNK: usize = 1024;
const CHUNK_COUNT: usize = 23;

/// The chunk and intra-chunk offset of symbol id `index`.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let chunk = ((index / FIRST_CHUNK) + 1).ilog2() as usize;
    let start = FIRST_CHUNK * ((1usize << chunk) - 1);
    (chunk, index - start)
}

/// Process-wide interner state.
struct Interner {
    /// Map from string to symbol id.  Read-locked on the (overwhelmingly
    /// common) already-interned path; the write lock is only reached by
    /// the first thread to intern a given string.
    map: RwLock<HashMap<&'static str, u32>>,
    /// Reverse table: symbol id to string, as an append-only sequence of
    /// geometrically growing chunks.  Never moves an entry once written,
    /// so resolving is lock-free: two `OnceLock` reads (atomic loads) and
    /// an index.  A slot's `OnceLock` is set before the id is published in
    /// `map`, so any `Sym` a caller can hold resolves successfully.
    ///
    /// Strings are leaked deliberately (see module docs); the number of
    /// distinct identifiers is bounded by the input.
    rev: [OnceLock<Box<[OnceLock<&'static str>]>>; CHUNK_COUNT],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: RwLock::new(HashMap::new()),
        rev: std::array::from_fn(|_| OnceLock::new()),
    })
}

impl Interner {
    fn intern(&self, s: &str) -> Sym {
        {
            let map = self.map.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(&id) = map.get(s) {
                return Sym(id);
            }
        }
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        // Another thread may have interned `s` between the locks.
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(map.len()).expect("interner overflow");
        let (chunk, offset) = locate(id as usize);
        let slots = self.rev[chunk]
            .get_or_init(|| (0..FIRST_CHUNK << chunk).map(|_| OnceLock::new()).collect());
        slots[offset]
            .set(leaked)
            .expect("fresh reverse-table slot already filled");
        map.insert(leaked, id);
        Sym(id)
    }

    fn resolve(&self, sym: Sym) -> &'static str {
        let (chunk, offset) = locate(sym.0 as usize);
        self.rev[chunk]
            .get()
            .expect("symbol from an unallocated chunk")[offset]
            .get()
            .expect("unpublished symbol")
    }

    fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// Intern a string, returning its symbol.
pub fn intern(s: &str) -> Sym {
    interner().intern(s)
}

/// Generate a fresh symbol that has not been interned before.
///
/// The symbol's name starts with `prefix` and is suffixed with a counter
/// until an unused name is found.  Used for fresh-variable generation when
/// building unfolding expansion trees (§2.3 of the paper) and when renaming
/// programs apart.
pub fn fresh(prefix: &str) -> Sym {
    // A dedicated counter avoids quadratic rescans for the common case where
    // all fresh symbols share a prefix.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let candidate = format!("{prefix}#{n}");
        let inner = interner();
        let already = {
            let map = inner.map.read().unwrap_or_else(PoisonError::into_inner);
            map.contains_key(candidate.as_str())
        };
        if !already {
            return inner.intern(&candidate);
        }
    }
}

/// Number of symbols interned so far (diagnostics only).
pub fn interned_count() -> usize {
    interner().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("edge");
        let b = intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("p");
        let b = intern("q");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "p");
        assert_eq!(b.as_str(), "q");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = fresh("v");
        let b = fresh("v");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("v#"));
    }

    #[test]
    fn fresh_never_collides_with_existing() {
        // Pre-intern a name that looks like a fresh name; `fresh` must skip it.
        let taken = intern("w#0");
        let mut produced = Vec::new();
        for _ in 0..5 {
            produced.push(fresh("w"));
        }
        assert!(produced.iter().all(|s| *s != taken));
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let s = intern("likes");
        assert_eq!(format!("{s}"), "likes");
        assert_eq!(format!("{s:?}"), "likes");
    }

    #[test]
    fn chunk_arithmetic_covers_every_id() {
        // Boundaries of the geometric chunks, plus the extremes.
        for (index, expected) in [
            (0, (0, 0)),
            (FIRST_CHUNK - 1, (0, FIRST_CHUNK - 1)),
            (FIRST_CHUNK, (1, 0)),
            (3 * FIRST_CHUNK - 1, (1, 2 * FIRST_CHUNK - 1)),
            (3 * FIRST_CHUNK, (2, 0)),
            (
                u32::MAX as usize,
                (22, u32::MAX as usize - FIRST_CHUNK * ((1 << 22) - 1)),
            ),
        ] {
            assert_eq!(locate(index), expected, "index {index}");
            let (chunk, offset) = locate(index);
            assert!(chunk < CHUNK_COUNT);
            assert!(offset < FIRST_CHUNK << chunk);
        }
        // Consecutive ids walk the chunks without gaps or overlaps.
        let mut previous = locate(0);
        for index in 1..4 * FIRST_CHUNK {
            let current = locate(index);
            if current.0 == previous.0 {
                assert_eq!(current.1, previous.1 + 1);
            } else {
                assert_eq!(current.0, previous.0 + 1);
                assert_eq!(current.1, 0);
            }
            previous = current;
        }
    }

    #[test]
    fn concurrent_interning_of_new_and_old_symbols_is_consistent() {
        // Many threads interning an overlapping mix of fresh and known
        // strings must agree on every id, and every id must resolve.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| {
                            let name = format!("race_sym_{}", (t + i) % 50);
                            (name.clone(), intern(&name))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut by_name: HashMap<String, Sym> = HashMap::new();
        for handle in handles {
            for (name, sym) in handle.join().unwrap() {
                assert_eq!(sym.as_str(), name);
                assert_eq!(*by_name.entry(name).or_insert(sym), sym);
            }
        }
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let s = intern(&format!("thread_sym_{}", i % 2));
                    (i % 2, s)
                })
            })
            .collect();
        let results: Vec<(usize, Sym)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (tag, sym) in &results {
            assert_eq!(sym.as_str(), format!("thread_sym_{tag}"));
        }
    }
}
