//! Global string interner.
//!
//! Every identifier that appears in a Datalog program — predicate names,
//! variable names, and constant names — is interned into a process-wide
//! table and referred to by a compact [`Sym`] handle.  Interning keeps the
//! core algorithms (containment-mapping search, proof-tree automata
//! construction) free of string comparisons and allocations, which the
//! performance guide for this codebase calls out as the dominant avoidable
//! cost in symbolic database code.
//!
//! The table only ever grows; symbols are never freed.  This is the right
//! trade-off for a decision-procedure library: the set of distinct
//! identifiers is bounded by the input programs plus a bounded number of
//! generated variables (`var(Π)` in the paper is at most twice the largest
//! rule), so memory usage stays proportional to the input size.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// `Sym` is a cheap, `Copy` handle (4 bytes) that can be compared, hashed,
/// and ordered in O(1).  Two `Sym`s are equal iff the strings they intern are
/// equal.  The ordering is *creation order*, not lexicographic; callers that
/// need lexicographic order should resolve the symbols first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Numeric id of the symbol (stable for the lifetime of the process).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Resolve the symbol back to its string.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-wide interner state.
struct Interner {
    /// Map from string to symbol id.
    map: Mutex<HashMap<&'static str, u32>>,
    /// Reverse table: symbol id to string.
    ///
    /// Strings are leaked deliberately (see module docs); the number of
    /// distinct identifiers is bounded by the input.
    rev: Mutex<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: Mutex::new(HashMap::new()),
        rev: Mutex::new(Vec::new()),
    })
}

impl Interner {
    fn intern(&self, s: &str) -> Sym {
        let mut map = self.map.lock().expect("interner poisoned");
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut rev = self.rev.lock().expect("interner poisoned");
        let id = u32::try_from(rev.len()).expect("interner overflow");
        rev.push(leaked);
        map.insert(leaked, id);
        Sym(id)
    }

    fn resolve(&self, sym: Sym) -> &'static str {
        let rev = self.rev.lock().expect("interner poisoned");
        rev[sym.0 as usize]
    }

    fn len(&self) -> usize {
        self.rev.lock().expect("interner poisoned").len()
    }
}

/// Intern a string, returning its symbol.
pub fn intern(s: &str) -> Sym {
    interner().intern(s)
}

/// Generate a fresh symbol that has not been interned before.
///
/// The symbol's name starts with `prefix` and is suffixed with a counter
/// until an unused name is found.  Used for fresh-variable generation when
/// building unfolding expansion trees (§2.3 of the paper) and when renaming
/// programs apart.
pub fn fresh(prefix: &str) -> Sym {
    // A dedicated counter avoids quadratic rescans for the common case where
    // all fresh symbols share a prefix.
    static COUNTER: OnceLock<Mutex<u64>> = OnceLock::new();
    let counter = COUNTER.get_or_init(|| Mutex::new(0));
    loop {
        let n = {
            let mut guard = counter.lock().expect("fresh counter poisoned");
            let n = *guard;
            *guard += 1;
            n
        };
        let candidate = format!("{prefix}#{n}");
        let inner = interner();
        let already = {
            let map = inner.map.lock().expect("interner poisoned");
            map.contains_key(candidate.as_str())
        };
        if !already {
            return inner.intern(&candidate);
        }
    }
}

/// Number of symbols interned so far (diagnostics only).
pub fn interned_count() -> usize {
    interner().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("edge");
        let b = intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("p");
        let b = intern("q");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "p");
        assert_eq!(b.as_str(), "q");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = fresh("v");
        let b = fresh("v");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("v#"));
    }

    #[test]
    fn fresh_never_collides_with_existing() {
        // Pre-intern a name that looks like a fresh name; `fresh` must skip it.
        let taken = intern("w#0");
        let mut produced = Vec::new();
        for _ in 0..5 {
            produced.push(fresh("w"));
        }
        assert!(produced.iter().all(|s| *s != taken));
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let s = intern("likes");
        assert_eq!(format!("{s}"), "likes");
        assert_eq!(format!("{s:?}"), "likes");
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let s = intern(&format!("thread_sym_{}", i % 2));
                    (i % 2, s)
                })
            })
            .collect();
        let results: Vec<(usize, Sym)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (tag, sym) in &results {
            assert_eq!(sym.as_str(), format!("thread_sym_{tag}"));
        }
    }
}
