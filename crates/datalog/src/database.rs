//! In-memory relational store.
//!
//! A [`Database`] maps predicate symbols to relations (sets of constant
//! tuples).  The paper quantifies over all databases; concretely we need
//! databases to evaluate programs and conjunctive queries for testing, for
//! the examples, and to materialise counterexamples (canonical databases of
//! expansion trees).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::atom::{Fact, Pred};
use crate::index::RelationIndex;
use crate::term::Constant;

/// A relation: a set of tuples of constants, all of the same arity.
///
/// Alongside the tuples, a relation lazily caches a per-column hash index
/// ([`RelationIndex`]) for the join engine; the cache is invalidated by any
/// mutation and rebuilt on the next [`Relation::index`] call.  The cache is
/// invisible to equality and ordering: two relations compare equal iff their
/// tuple sets do.
#[derive(Default)]
pub struct Relation {
    tuples: BTreeSet<Vec<Constant>>,
    /// Lazily built index snapshot; cleared by every `&mut self` method
    /// that changes `tuples`.  `OnceLock` keeps reads lock-free after the
    /// first build and stays shareable across threads (the parallel UCQ
    /// evaluator probes indexes from worker threads).
    index: OnceLock<Arc<RelationIndex>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            tuples: self.tuples.clone(),
            // A cached snapshot describes the same tuples, so the clone may
            // share it (snapshots are immutable).
            index: self.index.clone(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns true if it was not already present.
    pub fn insert(&mut self, tuple: Vec<Constant>) -> bool {
        let added = self.tuples.insert(tuple);
        if added {
            self.index.take();
        }
        added
    }

    /// The per-column hash index over the current tuples, built on first use
    /// and cached until the next mutation.  The returned snapshot is
    /// immutable: it keeps describing the relation as of this call even if
    /// the relation is mutated afterwards (re-fetch to see new tuples).
    pub fn index(&self) -> Arc<RelationIndex> {
        self.index
            .get_or_init(|| RelationIndex::build(self.tuples.iter()))
            .clone()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Constant]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Constant>> + '_ {
        self.tuples.iter()
    }

    /// Union another relation into this one; returns the number of new
    /// tuples added.
    pub fn absorb(&mut self, other: &Relation) -> usize {
        let before = self.tuples.len();
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
        let added = self.tuples.len() - before;
        if added > 0 {
            self.index.take();
        }
        added
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.tuples.iter()).finish()
    }
}

impl FromIterator<Vec<Constant>> for Relation {
    fn from_iter<I: IntoIterator<Item = Vec<Constant>>>(iter: I) -> Self {
        Relation {
            tuples: iter.into_iter().collect(),
            index: OnceLock::new(),
        }
    }
}

/// A database: a finite collection of relations indexed by predicate.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<Pred, Relation>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Build a database from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut db = Database::new();
        for f in facts {
            db.insert(f);
        }
        db
    }

    /// Insert a fact; returns true if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.relations
            .entry(fact.pred)
            .or_default()
            .insert(fact.tuple)
    }

    /// Insert a tuple for a predicate; returns true if it was new.
    pub fn insert_tuple(&mut self, pred: Pred, tuple: Vec<Constant>) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// The relation for a predicate (empty if absent).
    pub fn relation(&self, pred: Pred) -> &Relation {
        static EMPTY: Relation = Relation {
            tuples: BTreeSet::new(),
            index: OnceLock::new(),
        };
        self.relations.get(&pred).unwrap_or(&EMPTY)
    }

    /// The per-column hash index for a predicate's relation (see
    /// [`Relation::index`]); an empty index if the predicate is absent.
    pub fn index(&self, pred: Pred) -> Arc<RelationIndex> {
        self.relation(pred).index()
    }

    /// Does the database contain this fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relation(fact.pred).contains(&fact.tuple)
    }

    /// Iterate over all facts in the database.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(&pred, rel)| {
            rel.iter().map(move |tuple| Fact {
                pred,
                tuple: tuple.clone(),
            })
        })
    }

    /// The predicates with at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = Pred> + '_ {
        self.relations
            .iter()
            .filter(|(_, rel)| !rel.is_empty())
            .map(|(&p, _)| p)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True if the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All constants mentioned anywhere in the database (the active domain).
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(|rel| rel.iter().flat_map(|t| t.iter().copied()))
            .collect()
    }

    /// Union another database into this one; returns the number of new
    /// facts.
    pub fn absorb(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (&pred, rel) in &other.relations {
            added += self.relations.entry(pred).or_default().absorb(rel);
        }
        added
    }

    /// Restrict the database to the given predicates (used to project an
    /// evaluation result onto the EDB or onto a goal predicate).
    pub fn restrict_to(&self, preds: &BTreeSet<Pred>) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .filter(|(p, _)| preds.contains(p))
                .map(|(&p, r)| (p, r.clone()))
                .collect(),
        }
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.facts() {
            writeln!(f, "{fact}.")?;
        }
        Ok(())
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromIterator<Fact> for Database {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        Database::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> Constant {
        Constant::new(name)
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        assert!(db.insert(Fact::app("e", ["a", "b"])));
        assert!(!db.insert(Fact::app("e", ["a", "b"])), "duplicate insert");
        assert!(db.contains(&Fact::app("e", ["a", "b"])));
        assert!(!db.contains(&Fact::app("e", ["b", "a"])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn relation_for_missing_predicate_is_empty() {
        let db = Database::new();
        assert!(db.relation(Pred::new("nothing")).is_empty());
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let db = Database::from_facts([Fact::app("e", ["a", "b"]), Fact::app("f", ["c"])]);
        assert_eq!(db.active_domain(), BTreeSet::from([c("a"), c("b"), c("c")]));
    }

    #[test]
    fn absorb_counts_new_facts() {
        let mut db1 = Database::from_facts([Fact::app("e", ["a", "b"])]);
        let db2 = Database::from_facts([Fact::app("e", ["a", "b"]), Fact::app("e", ["b", "c"])]);
        assert_eq!(db1.absorb(&db2), 1);
        assert_eq!(db1.len(), 2);
    }

    #[test]
    fn facts_round_trip() {
        let facts = vec![Fact::app("e", ["a", "b"]), Fact::app("g", ["x", "y", "z"])];
        let db: Database = facts.iter().cloned().collect();
        let collected: BTreeSet<Fact> = db.facts().collect();
        assert_eq!(collected, facts.into_iter().collect());
    }

    /// Interleave inserts with indexed lookups and compare every lookup
    /// against a scan oracle: catches stale-index bugs where a cached
    /// snapshot survives a mutation.
    #[test]
    fn index_invalidation_agrees_with_scan_oracle() {
        use rng::{Rng, SeedableRng};
        let mut rng = rng::StdRng::seed_from_u64(rng::spread_seed(17));
        let pred = Pred::new("ix");
        let mut db = Database::new();
        for step in 0..200 {
            let tuple = vec![
                Constant::from_usize(rng.random_range(0..6usize)),
                Constant::from_usize(rng.random_range(0..6usize)),
            ];
            db.insert_tuple(pred, tuple);
            // After every insert, the re-fetched index must agree with a
            // scan of the relation on every (column, value) probe.
            let rel = db.relation(pred);
            let idx = db.index(pred);
            assert_eq!(idx.len(), rel.len(), "step {step}: row count");
            for col in 0..2 {
                for v in 0..6 {
                    let value = Constant::from_usize(v);
                    let via_index: Vec<&[Constant]> = idx
                        .postings(col, value)
                        .iter()
                        .map(|&id| idx.rows()[id as usize].as_slice())
                        .collect();
                    let via_scan: Vec<&[Constant]> = rel
                        .iter()
                        .filter(|t| t[col] == value)
                        .map(Vec::as_slice)
                        .collect();
                    assert_eq!(via_index, via_scan, "step {step}: column {col}, value c{v}");
                }
            }
        }
    }

    /// `absorb` is a mutation too: a cached index must not survive it.
    #[test]
    fn absorb_invalidates_the_cached_index() {
        let mut db1 = Database::from_facts([Fact::app("e", ["a", "b"])]);
        assert_eq!(db1.index(Pred::new("e")).len(), 1); // prime the cache
        let db2 = Database::from_facts([Fact::app("e", ["b", "c"])]);
        db1.absorb(&db2);
        assert_eq!(db1.index(Pred::new("e")).len(), 2);
    }

    /// A duplicate insert is a no-op and may keep the cached index.
    #[test]
    fn duplicate_insert_keeps_index_consistent() {
        let mut db = Database::from_facts([Fact::app("e", ["a", "b"])]);
        let before = db.index(Pred::new("e"));
        assert!(!db.insert(Fact::app("e", ["a", "b"])));
        assert_eq!(db.index(Pred::new("e")).len(), before.len());
    }

    /// Cloned relations still answer indexed lookups correctly after the
    /// original (or the clone) diverges.
    #[test]
    fn cloned_relation_index_tracks_its_own_tuples() {
        let db = Database::from_facts([Fact::app("e", ["a", "b"])]);
        let _ = db.index(Pred::new("e")); // prime the cache before cloning
        let mut copy = db.clone();
        copy.insert(Fact::app("e", ["b", "c"]));
        assert_eq!(db.index(Pred::new("e")).len(), 1);
        assert_eq!(copy.index(Pred::new("e")).len(), 2);
    }

    #[test]
    fn restrict_to_projects_predicates() {
        let db = Database::from_facts([Fact::app("e", ["a", "b"]), Fact::app("p", ["a", "b"])]);
        let only_e = db.restrict_to(&BTreeSet::from([Pred::new("e")]));
        assert_eq!(only_e.len(), 1);
        assert!(only_e.contains(&Fact::app("e", ["a", "b"])));
        assert!(!only_e.contains(&Fact::app("p", ["a", "b"])));
    }
}
