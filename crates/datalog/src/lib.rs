//! # datalog
//!
//! Datalog substrate for the reproduction of Chaudhuri & Vardi, *On the
//! Equivalence of Recursive and Nonrecursive Datalog Programs* (PODS 1992 /
//! JCSS 1997).
//!
//! This crate provides everything "below" the paper's contribution:
//!
//! * an interned AST for Datalog programs ([`Atom`], [`Rule`], [`Program`]),
//! * a parser for the usual textual syntax ([`parser::parse_program`]),
//! * the predicate dependency graph and the recursive / nonrecursive /
//!   linear classification ([`depgraph::DependencyGraph`]),
//! * an in-memory relational store ([`Database`]) with lazily indexed
//!   relations ([`index::RelationIndex`]) and naive, semi-naive, and
//!   indexed-join bottom-up evaluation ([`eval::evaluate`],
//!   [`plan::JoinPlan`]),
//! * a goal-directed planning layer: bound/free adornments under a
//!   configurable SIPS ([`adorn`]) and the magic-set rewrite ([`magic`]),
//!   surfaced as [`eval::Strategy::Magic`] via [`eval::evaluate_goal`],
//! * program validation ([`validate`]) and statistics ([`stats`]),
//! * generators for the paper's program families and for random instances
//!   ([`generate`]).
//!
//! The decision procedures themselves live in the `nonrec-equivalence`
//! crate; conjunctive queries in `cq`; automata in `automata`.
//!
//! ## Quick example
//!
//! ```
//! use datalog::parser::parse_program;
//! use datalog::generate::chain_database;
//! use datalog::eval::evaluate;
//! use datalog::atom::Pred;
//!
//! let program = parse_program(
//!     "p(X, Y) :- e(X, Z), p(Z, Y).\n\
//!      p(X, Y) :- e(X, Y).",
//! ).unwrap();
//! assert!(program.is_recursive());
//! assert!(program.is_linear());
//!
//! let db = chain_database("e", 4);
//! let result = evaluate(&program, &db);
//! assert_eq!(result.relation(Pred::new("p")).len(), 10); // all 4+3+2+1 paths
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adorn;
pub mod atom;
pub mod database;
pub mod depgraph;
pub mod error;
pub mod eval;
pub mod generate;
pub mod index;
pub mod intern;
pub mod lexer;
pub mod magic;
pub mod parser;
pub mod plan;
pub mod program;
pub mod rule;
pub mod stats;
pub mod substitution;
pub mod term;
pub mod validate;

pub use atom::{Atom, Fact, Pred};
pub use database::{Database, Relation};
pub use program::Program;
pub use rule::Rule;
pub use substitution::Substitution;
pub use term::{Constant, Term, Var};
