//! Per-(predicate, column) hash indexes over relations.
//!
//! A [`RelationIndex`] is an immutable snapshot of one relation's tuples
//! together with a hash map per column from constant to the (sorted) row ids
//! holding that constant at that column.  The indexed join engine in
//! [`crate::eval`] and the database-backed homomorphism search in the `cq`
//! crate both enumerate join candidates through [`RelationIndex::candidates`]
//! instead of scanning the whole relation, which turns the per-atom cost
//! from O(|relation|) into O(|matching tuples|).
//!
//! Snapshots are built lazily by [`crate::database::Relation::index`] and
//! cached inside the relation; any mutation of the relation invalidates the
//! cache (see the invalidation tests in `database.rs`).  A snapshot handed
//! out before a mutation stays alive (it is an [`Arc`]) and continues to
//! describe the relation as it was when the snapshot was taken — callers
//! that interleave inserts with lookups must re-fetch the index, which the
//! evaluation engine does once per fixpoint iteration.
//!
//! Everything here is deterministic: rows are stored in the relation's
//! sorted order, posting lists are sorted by row id, and candidate selection
//! breaks ties by the lowest column, so probe counts and enumeration orders
//! are stable across runs and platforms (the benches snapshot probe counts).

use std::collections::HashMap;
use std::sync::Arc;

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::{Constant, Term};

/// An immutable index snapshot of a single relation.
///
/// Built by [`crate::database::Relation::index`]; see the module docs for
/// the caching and invalidation contract.
#[derive(Debug)]
pub struct RelationIndex {
    /// The tuples, in the relation's sorted iteration order.
    rows: Vec<Vec<Constant>>,
    /// `columns[c]` maps a constant to the ids of the rows whose `c`-th
    /// component is that constant.  Rows shorter than `c + 1` components do
    /// not appear in `columns[c]` (relations normally have uniform arity;
    /// the index tolerates mixed arities and lets the caller's tuple match
    /// filter them out).
    columns: Vec<HashMap<Constant, Vec<u32>>>,
}

impl RelationIndex {
    /// Build an index over tuples given in sorted order.
    pub(crate) fn build<'a, I: Iterator<Item = &'a Vec<Constant>>>(tuples: I) -> Arc<Self> {
        let rows: Vec<Vec<Constant>> = tuples.cloned().collect();
        let width = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut columns: Vec<HashMap<Constant, Vec<u32>>> = vec![HashMap::new(); width];
        for (id, row) in rows.iter().enumerate() {
            let id = u32::try_from(id).expect("relation exceeds u32 rows");
            for (col, &value) in row.iter().enumerate() {
                columns[col].entry(value).or_default().push(id);
            }
        }
        Arc::new(RelationIndex { rows, columns })
    }

    /// Number of rows in the snapshot.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the snapshot has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in the relation's sorted order.
    pub fn rows(&self) -> &[Vec<Constant>] {
        &self.rows
    }

    /// The ids of the rows whose `column`-th component equals `value`
    /// (empty if none, or if the column is out of range).
    pub fn postings(&self, column: usize, value: Constant) -> &[u32] {
        self.columns
            .get(column)
            .and_then(|m| m.get(&value))
            .map_or(&[], Vec::as_slice)
    }

    /// The shortest posting list among `atom`'s *bound* columns (a constant
    /// in the atom, or a variable `subst` already binds to a constant), or
    /// `None` if no column is bound.  Ties prefer the lowest column,
    /// keeping enumeration (and hence probe counts) deterministic.  Shared
    /// by [`Self::candidates`] and [`Self::candidate_estimate`] so the
    /// estimate always describes exactly the set that would be enumerated.
    fn best_postings<'a>(&'a self, atom: &Atom, subst: &Substitution) -> Option<&'a [u32]> {
        let mut best: Option<&'a [u32]> = None;
        for (col, &term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(c),
                Term::Var(v) => match subst.get(v) {
                    Some(Term::Const(c)) => Some(c),
                    _ => None,
                },
            };
            if let Some(value) = value {
                let postings = self.postings(col, value);
                if best.is_none_or(|b| postings.len() < b.len()) {
                    best = Some(postings);
                }
            }
        }
        best
    }

    /// The number of candidate rows [`Self::candidates`] would enumerate
    /// for `atom` under `subst`: the shortest bound-column posting list, or
    /// the full row count with no bound column.  Used by the dynamic
    /// most-constrained-first atom selection in the `cq` homomorphism
    /// search (an estimate of 0 proves the atom cannot match, pruning the
    /// branch).
    pub fn candidate_estimate(&self, atom: &Atom, subst: &Substitution) -> usize {
        self.best_postings(atom, subst)
            .map_or(self.rows.len(), <[u32]>::len)
    }

    /// Candidate rows for matching `atom` under the bindings of `subst`:
    /// the rows of the most selective bound-column posting list
    /// (`best_postings`), or all rows with no bound column.  Every
    /// returned row still has to pass a full
    /// [`Substitution::match_tuple`]; the index only prunes.
    pub fn candidates<'a>(&'a self, atom: &Atom, subst: &Substitution) -> Candidates<'a> {
        match self.best_postings(atom, subst) {
            Some(postings) => Candidates::Postings {
                index: self,
                ids: postings.iter(),
            },
            None => Candidates::All(self.rows.iter()),
        }
    }
}

/// Iterator over the candidate rows selected by [`RelationIndex::candidates`].
pub enum Candidates<'a> {
    /// No column was bound: every row is a candidate.
    All(std::slice::Iter<'a, Vec<Constant>>),
    /// Rows named by the chosen posting list.
    Postings {
        /// The snapshot the ids point into.
        index: &'a RelationIndex,
        /// The posting-list cursor.
        ids: std::slice::Iter<'a, u32>,
    },
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a [Constant];

    fn next(&mut self) -> Option<&'a [Constant]> {
        match self {
            Candidates::All(rows) => rows.next().map(Vec::as_slice),
            Candidates::Postings { index, ids } => {
                ids.next().map(|&id| index.rows[id as usize].as_slice())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::database::Relation;
    use crate::term::Var;

    fn rel(edges: &[(usize, usize)]) -> Relation {
        edges
            .iter()
            .map(|&(a, b)| vec![Constant::from_usize(a), Constant::from_usize(b)])
            .collect()
    }

    #[test]
    fn postings_find_rows_by_column_value() {
        let r = rel(&[(0, 1), (0, 2), (1, 2)]);
        let idx = r.index();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.postings(0, Constant::from_usize(0)).len(), 2);
        assert_eq!(idx.postings(1, Constant::from_usize(2)).len(), 2);
        assert_eq!(idx.postings(0, Constant::from_usize(9)).len(), 0);
        assert_eq!(idx.postings(7, Constant::from_usize(0)).len(), 0);
    }

    #[test]
    fn candidates_use_the_most_selective_bound_column() {
        let r = rel(&[(0, 1), (0, 2), (1, 2), (3, 2)]);
        let idx = r.index();
        // X bound to c1: column 0 has one matching row, column 1 (unbound) none.
        let mut subst = Substitution::new();
        subst.bind_var(Var::new("X"), Term::Const(Constant::from_usize(1)));
        let atom = Atom::app("e", ["X", "Y"]);
        let rows: Vec<_> = idx.candidates(&atom, &subst).collect();
        assert_eq!(
            rows,
            vec![&[Constant::from_usize(1), Constant::from_usize(2)][..]]
        );
    }

    #[test]
    fn unbound_patterns_fall_back_to_all_rows() {
        let r = rel(&[(0, 1), (1, 2)]);
        let idx = r.index();
        let atom = Atom::app("e", ["X", "Y"]);
        assert_eq!(idx.candidates(&atom, &Substitution::new()).count(), 2);
    }

    #[test]
    fn constants_in_the_atom_bind_columns() {
        let r = rel(&[(0, 1), (1, 2), (2, 1)]);
        let idx = r.index();
        let atom = Atom::app("e", ["X", "c1"]);
        let rows: Vec<_> = idx.candidates(&atom, &Substitution::new()).collect();
        assert_eq!(rows.len(), 2); // (0,1) and (2,1)
    }

    #[test]
    fn candidate_enumeration_follows_relation_iteration_order() {
        let r = rel(&[(2, 5), (0, 5), (1, 5), (3, 4)]);
        let idx = r.index();
        let atom = Atom::app("e", ["X", "c5"]);
        let via_index: Vec<&[Constant]> = idx.candidates(&atom, &Substitution::new()).collect();
        let via_scan: Vec<&[Constant]> = r
            .iter()
            .filter(|t| t[1] == Constant::from_usize(5))
            .map(Vec::as_slice)
            .collect();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn mixed_arity_rows_are_tolerated() {
        let mut r = Relation::new();
        r.insert(vec![Constant::from_usize(0)]);
        r.insert(vec![Constant::from_usize(0), Constant::from_usize(1)]);
        let idx = r.index();
        assert_eq!(idx.postings(0, Constant::from_usize(0)).len(), 2);
        assert_eq!(idx.postings(1, Constant::from_usize(1)).len(), 1);
    }

    #[test]
    fn snapshot_is_detached_from_later_mutation() {
        let mut db = crate::database::Database::new();
        db.insert(Fact::app("e", ["a", "b"]));
        let before = db.relation(crate::atom::Pred::new("e")).index();
        db.insert(Fact::app("e", ["b", "c"]));
        let after = db.relation(crate::atom::Pred::new("e")).index();
        assert_eq!(before.len(), 1, "old snapshot unchanged");
        assert_eq!(after.len(), 2, "re-fetch sees the insert");
    }
}
