//! Datalog programs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Pred;
use crate::depgraph::DependencyGraph;
use crate::rule::Rule;
use crate::term::Var;

/// A Datalog program: a finite set of Horn rules.
///
/// Following Section 2.1 of the paper, the predicates that occur in heads of
/// rules are the *intentional* (IDB) predicates; all other predicates are
/// *extensional* (EDB) predicates.
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// Build a program from a list of rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// The empty program.
    pub fn empty() -> Self {
        Program { rules: Vec::new() }
    }

    /// The rules of the program, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Add a rule to the program.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Concatenate two programs (set union of rules, duplicates retained —
    /// duplicate rules do not change the semantics).
    pub fn union(&self, other: &Program) -> Program {
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().cloned());
        Program { rules }
    }

    /// The IDB predicates: those that occur in the head of some rule.
    pub fn idb_predicates(&self) -> BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// The EDB predicates: those that occur only in rule bodies.
    pub fn edb_predicates(&self) -> BTreeSet<Pred> {
        let idb = self.idb_predicates();
        let mut edb = BTreeSet::new();
        for rule in &self.rules {
            for atom in &rule.body {
                if !idb.contains(&atom.pred) {
                    edb.insert(atom.pred);
                }
            }
        }
        edb
    }

    /// All predicates mentioned anywhere in the program.
    pub fn predicates(&self) -> BTreeSet<Pred> {
        let mut all = BTreeSet::new();
        for rule in &self.rules {
            all.insert(rule.head.pred);
            for atom in &rule.body {
                all.insert(atom.pred);
            }
        }
        all
    }

    /// Is `pred` an IDB predicate of this program?
    pub fn is_idb(&self, pred: Pred) -> bool {
        self.rules.iter().any(|r| r.head.pred == pred)
    }

    /// The rules whose head predicate is `pred`, with their indices in the
    /// program.
    pub fn rules_for(&self, pred: Pred) -> impl Iterator<Item = (usize, &Rule)> + '_ {
        self.rules
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.head.pred == pred)
    }

    /// Arity of each predicate, taken from its first occurrence.
    /// [`crate::validate::validate`] checks that all occurrences agree.
    pub fn arities(&self) -> BTreeMap<Pred, usize> {
        let mut arities = BTreeMap::new();
        for rule in &self.rules {
            arities.entry(rule.head.pred).or_insert(rule.head.arity());
            for atom in &rule.body {
                arities.entry(atom.pred).or_insert(atom.arity());
            }
        }
        arities
    }

    /// Arity of a single predicate, if it occurs in the program.
    pub fn arity_of(&self, pred: Pred) -> Option<usize> {
        for rule in &self.rules {
            if rule.head.pred == pred {
                return Some(rule.head.arity());
            }
            for atom in &rule.body {
                if atom.pred == pred {
                    return Some(atom.arity());
                }
            }
        }
        None
    }

    /// All distinct variables mentioned in the program.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.rules.iter().flat_map(|r| r.variables()).collect()
    }

    /// The dependency graph of the program (Section 1: edge from Q to P if P
    /// depends on Q, i.e. Q occurs in the body of a rule with head P).
    pub fn dependency_graph(&self) -> DependencyGraph {
        DependencyGraph::of_program(self)
    }

    /// Is the program nonrecursive, i.e. is its dependence graph acyclic?
    pub fn is_nonrecursive(&self) -> bool {
        self.dependency_graph().is_acyclic()
    }

    /// Is the program recursive (not nonrecursive)?
    pub fn is_recursive(&self) -> bool {
        !self.is_nonrecursive()
    }

    /// Is the program *linear*: does every rule contain at most one
    /// recursive subgoal?  A body atom is a recursive subgoal of a rule if
    /// its predicate is mutually recursive with the rule's head predicate
    /// (same strongly connected component of the dependency graph), or if it
    /// is the head predicate of a self-recursive rule.
    pub fn is_linear(&self) -> bool {
        let dg = self.dependency_graph();
        self.rules.iter().all(|rule| {
            let recursive_subgoals = rule
                .body
                .iter()
                .filter(|atom| dg.mutually_recursive(atom.pred, rule.head.pred))
                .count();
            recursive_subgoals <= 1
        })
    }

    /// `varnum(Π)` from Section 5.1: twice the maximum over all rules r of
    /// `varnum(r)`, the number of variables occurring in IDB atoms of r.
    ///
    /// The result is at least 2·(goal arity) even for programs whose rules
    /// mention few IDB variables, so that a goal atom over distinct
    /// variables can always be written with variables from `var(Π)`.
    pub fn varnum(&self) -> usize {
        let idb = self.idb_predicates();
        let is_idb = |p: Pred| idb.contains(&p);
        let per_rule = self
            .rules
            .iter()
            .map(|r| r.varnum_idb(is_idb))
            .max()
            .unwrap_or(0);
        let max_idb_arity = self
            .arities()
            .iter()
            .filter(|(p, _)| idb.contains(p))
            .map(|(_, &a)| a)
            .max()
            .unwrap_or(0);
        2 * per_rule.max(max_idb_arity)
    }

    /// The bounded variable set `var(Π) = {x1, …, x_varnum(Π)}` used by
    /// proof trees (Section 5.1).
    pub fn var_set(&self) -> Vec<Var> {
        (1..=self.varnum()).map(Var::canonical).collect()
    }

    /// Total number of atoms (head + body) — a simple size measure used by
    /// benches.
    pub fn atom_count(&self) -> usize {
        self.rules.iter().map(|r| 1 + r.body.len()).sum()
    }

    /// A rough textual size of the program: total number of term positions.
    /// This is the "size of Π" parameter the complexity bounds are stated
    /// in.
    pub fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.head.arity() + r.body.iter().map(|a| a.arity()).sum::<usize>())
            .sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Program {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    /// The transitive-closure program of Example 2.5.
    fn tc() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::app("p", ["X", "Y"]),
                vec![Atom::app("e", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
            ),
            Rule::new(
                Atom::app("p", ["X", "Y"]),
                vec![Atom::app("ep", ["X", "Y"])],
            ),
        ])
    }

    /// The buys program Π₁ of Example 1.1.
    fn buys1() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::app("buys", ["X", "Y"]),
                vec![Atom::app("likes", ["X", "Y"])],
            ),
            Rule::new(
                Atom::app("buys", ["X", "Y"]),
                vec![Atom::app("trendy", ["X"]), Atom::app("buys", ["Z", "Y"])],
            ),
        ])
    }

    #[test]
    fn idb_and_edb_classification() {
        let p = tc();
        assert_eq!(p.idb_predicates(), BTreeSet::from([Pred::new("p")]));
        assert_eq!(
            p.edb_predicates(),
            BTreeSet::from([Pred::new("e"), Pred::new("ep")])
        );
        assert!(p.is_idb(Pred::new("p")));
        assert!(!p.is_idb(Pred::new("e")));
    }

    #[test]
    fn arities_are_collected() {
        let p = tc();
        assert_eq!(p.arity_of(Pred::new("p")), Some(2));
        assert_eq!(p.arity_of(Pred::new("e")), Some(2));
        assert_eq!(p.arity_of(Pred::new("missing")), None);
        assert_eq!(p.arities().len(), 3);
    }

    #[test]
    fn recursion_and_linearity_detection() {
        let p = tc();
        assert!(p.is_recursive());
        assert!(!p.is_nonrecursive());
        assert!(p.is_linear());

        let b = buys1();
        assert!(b.is_recursive());
        assert!(b.is_linear());

        // A doubling rule p(X,Y) :- p(X,Z), p(Z,Y) is recursive but not linear.
        let nonlinear = Program::new(vec![
            Rule::new(
                Atom::app("p", ["X", "Y"]),
                vec![Atom::app("p", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
            ),
            Rule::new(Atom::app("p", ["X", "Y"]), vec![Atom::app("e", ["X", "Y"])]),
        ]);
        assert!(nonlinear.is_recursive());
        assert!(!nonlinear.is_linear());
    }

    #[test]
    fn nonrecursive_program_is_detected() {
        let nonrec = Program::new(vec![
            Rule::new(Atom::app("q", ["X", "Y"]), vec![Atom::app("e", ["X", "Y"])]),
            Rule::new(
                Atom::app("r", ["X", "Y"]),
                vec![Atom::app("q", ["X", "Z"]), Atom::app("q", ["Z", "Y"])],
            ),
        ]);
        assert!(nonrec.is_nonrecursive());
        assert!(nonrec.is_linear());
    }

    #[test]
    fn varnum_is_twice_max_idb_varnum() {
        // TC program: recursive rule has IDB atoms p(X,Y), p(Z,Y) → 3 vars;
        // exit rule has IDB atom p(X,Y) → 2 vars. varnum = 2 * 3 = 6.
        assert_eq!(tc().varnum(), 6);
        assert_eq!(tc().var_set().len(), 6);
        assert_eq!(tc().var_set()[0], Var::new("x1"));
    }

    #[test]
    fn varnum_covers_goal_arity_even_without_idb_body_vars() {
        // C :- e(X). — the 0-ary goal has no variables, but a unary IDB
        // predicate q(X) :- e(X) must still get var(Π) of size ≥ 2.
        let p = Program::new(vec![Rule::new(
            Atom::app("q", ["X"]),
            vec![Atom::app("e", ["X"])],
        )]);
        assert!(p.varnum() >= 2);
    }

    #[test]
    fn size_measures_term_positions() {
        // TC: rule 1 has 2 + 2 + 2 = 6 positions, rule 2 has 2 + 2 = 4.
        assert_eq!(tc().size(), 10);
        assert_eq!(tc().atom_count(), 5);
    }

    #[test]
    fn union_concatenates_rules() {
        let u = tc().union(&buys1());
        assert_eq!(u.len(), 4);
        assert!(u.is_idb(Pred::new("p")));
        assert!(u.is_idb(Pred::new("buys")));
    }

    #[test]
    fn display_prints_one_rule_per_line() {
        let text = tc().to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("p(X, Y) :- e(X, Z), p(Z, Y)."));
    }
}
