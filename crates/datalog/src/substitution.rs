//! Variable substitutions and one-way matching.
//!
//! Substitutions map variables to terms.  They are used to build rule
//! *instances* (expansion-tree and proof-tree labels, §2.3 and §5.1), to
//! evaluate rules against databases, and — in the `cq` crate — to represent
//! containment mappings.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::Atom;
use crate::rule::Rule;
use crate::term::{Constant, Term, Var};

/// A finite mapping from variables to terms.
///
/// Variables not in the domain are mapped to themselves.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Number of variables in the domain.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bind `var` to `term`, overwriting any previous binding.
    pub fn bind_var(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// Bind `var` to `term` only if consistent with an existing binding.
    /// Returns `false` (and leaves the substitution unchanged) if `var` is
    /// already bound to a different term.
    pub fn try_bind(&mut self, var: Var, term: Term) -> bool {
        match self.map.get(&var) {
            Some(&existing) => existing == term,
            None => {
                self.map.insert(var, term);
                true
            }
        }
    }

    /// Look up the binding of a variable.
    pub fn get(&self, var: Var) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Apply the substitution to a term.
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(&v).copied().unwrap_or(term),
            Term::Const(_) => term,
        }
    }

    /// Apply the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            pred: atom.pred,
            terms: atom.terms.iter().map(|&t| self.apply_term(t)).collect(),
        }
    }

    /// Apply the substitution to a rule.
    pub fn apply_rule(&self, rule: &Rule) -> Rule {
        rule.apply(self)
    }

    /// Compose `self` with `other`: the result first applies `self`, then
    /// `other` to the image.  Variables bound only by `other` are also bound
    /// in the result.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in self.iter() {
            out.bind_var(v, other.apply_term(t));
        }
        for (v, t) in other.iter() {
            out.map.entry(v).or_insert(t);
        }
        out
    }

    /// Extend `self` so that `pattern` matched against `target` succeeds
    /// (one-way matching: only variables of `pattern` are bound).  Returns
    /// `false` and leaves `self` in an unspecified-but-valid state on
    /// failure; callers that need backtracking should clone first (matching
    /// is cheap: atom arities are small).
    pub fn match_atom(&mut self, pattern: &Atom, target: &Atom) -> bool {
        if pattern.pred != target.pred || pattern.terms.len() != target.terms.len() {
            return false;
        }
        for (&pt, &tt) in pattern.terms.iter().zip(&target.terms) {
            match pt {
                Term::Const(c) => {
                    if Term::Const(c) != tt {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if !self.try_bind(v, tt) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Match a pattern atom against a ground tuple of constants (a database
    /// row for `pattern.pred`).
    pub fn match_tuple(&mut self, pattern: &Atom, tuple: &[Constant]) -> bool {
        if pattern.terms.len() != tuple.len() {
            return false;
        }
        for (&pt, &c) in pattern.terms.iter().zip(tuple) {
            match pt {
                Term::Const(pc) => {
                    if pc != c {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if !self.try_bind(v, Term::Const(c)) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_replaces_only_bound_variables() {
        let mut s = Substitution::new();
        s.bind_var(Var::new("X"), Term::Const(Constant::new("a")));
        let a = Atom::app("e", ["X", "Y"]);
        assert_eq!(s.apply_atom(&a).to_string(), "e(a, Y)");
    }

    #[test]
    fn try_bind_rejects_conflicts() {
        let mut s = Substitution::new();
        assert!(s.try_bind(Var::new("X"), Term::Const(Constant::new("a"))));
        assert!(s.try_bind(Var::new("X"), Term::Const(Constant::new("a"))));
        assert!(!s.try_bind(Var::new("X"), Term::Const(Constant::new("b"))));
    }

    #[test]
    fn match_atom_binds_pattern_variables() {
        let mut s = Substitution::new();
        let pattern = Atom::app("e", ["X", "X"]);
        assert!(s.match_atom(&pattern, &Atom::app("e", ["a", "a"])));
        assert_eq!(s.get(Var::new("X")), Some(Term::Const(Constant::new("a"))));

        let mut s2 = Substitution::new();
        assert!(!s2.match_atom(&pattern, &Atom::app("e", ["a", "b"])));
    }

    #[test]
    fn match_atom_respects_predicate_and_arity() {
        let mut s = Substitution::new();
        assert!(!s.match_atom(&Atom::app("e", ["X"]), &Atom::app("f", ["a"])));
        assert!(!s.match_atom(&Atom::app("e", ["X"]), &Atom::app("e", ["a", "b"])));
    }

    #[test]
    fn match_tuple_matches_constants_and_variables() {
        let mut s = Substitution::new();
        let pattern = Atom::app("e", ["X", "b"]);
        assert!(s.match_tuple(&pattern, &[Constant::new("a"), Constant::new("b")]));
        assert!(!s.match_tuple(
            &Atom::app("e", ["X", "c"]),
            &[Constant::new("a"), Constant::new("b")]
        ));
    }

    #[test]
    fn compose_applies_left_then_right() {
        let mut s1 = Substitution::new();
        s1.bind_var(Var::new("X"), Term::Var(Var::new("Y")));
        let mut s2 = Substitution::new();
        s2.bind_var(Var::new("Y"), Term::Const(Constant::new("a")));
        let c = s1.compose(&s2);
        assert_eq!(
            c.apply_term(Term::Var(Var::new("X"))),
            Term::Const(Constant::new("a"))
        );
        assert_eq!(
            c.apply_term(Term::Var(Var::new("Y"))),
            Term::Const(Constant::new("a"))
        );
    }

    #[test]
    fn display_is_readable() {
        let mut s = Substitution::new();
        s.bind_var(Var::new("X"), Term::Const(Constant::new("a")));
        assert_eq!(s.to_string(), "{X -> a}");
    }
}
