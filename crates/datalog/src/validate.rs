//! Program validation.
//!
//! The decision procedures assume well-formed inputs: consistent predicate
//! arities, range-restricted (safe) rules, and — when two programs are
//! compared — agreement on which predicates are extensional.  This module
//! checks those conditions and reports every violation found.

use std::collections::BTreeMap;

use crate::atom::Pred;
use crate::error::ValidationError;
use crate::program::Program;

/// Validation strictness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Safety {
    /// Require every head variable to occur in the body (range restriction).
    Strict,
    /// Allow unsafe rules (e.g. `dist0(X, X) :-` from Example 6.2, which is
    /// interpreted over the active domain).
    AllowUnsafe,
}

/// Validate a single program.  Returns all problems found (empty vector =
/// valid).
pub fn validate(program: &Program, safety: Safety) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    check_arities(program, &mut errors);
    if safety == Safety::Strict {
        check_safety(program, &mut errors);
    }
    errors
}

/// Validate a program together with a goal predicate.
pub fn validate_with_goal(program: &Program, goal: Pred, safety: Safety) -> Vec<ValidationError> {
    let mut errors = validate(program, safety);
    if !program.predicates().contains(&goal) {
        errors.push(ValidationError::MissingGoal {
            goal: goal.name().to_string(),
        });
    }
    errors
}

/// Validate a pair of programs that are to be compared over a common EDB:
/// both must be individually valid, and no predicate that is extensional in
/// one may be defined (appear in a rule head) in the other *unless* it is
/// the shared goal predicate.
pub fn validate_pair(
    left: &Program,
    right: &Program,
    goal: Pred,
    safety: Safety,
) -> Vec<ValidationError> {
    let mut errors = validate_with_goal(left, goal, safety);
    errors.extend(validate_with_goal(right, goal, safety));
    for (a, b) in [(left, right), (right, left)] {
        let a_edb = a.edb_predicates();
        for pred in b.idb_predicates() {
            if pred != goal && a_edb.contains(&pred) {
                errors.push(ValidationError::EdbRedefined {
                    pred: pred.name().to_string(),
                });
            }
        }
    }
    errors
}

/// Require a program to be nonrecursive.
pub fn require_nonrecursive(program: &Program) -> Result<(), ValidationError> {
    if program.is_nonrecursive() {
        Ok(())
    } else {
        Err(ValidationError::ExpectedNonrecursive)
    }
}

fn check_arities(program: &Program, errors: &mut Vec<ValidationError>) {
    let mut seen: BTreeMap<Pred, usize> = BTreeMap::new();
    let mut check =
        |pred: Pred, arity: usize, errors: &mut Vec<ValidationError>| match seen.get(&pred) {
            Some(&expected) if expected != arity => errors.push(ValidationError::ArityMismatch {
                pred: pred.name().to_string(),
                expected,
                found: arity,
            }),
            Some(_) => {}
            None => {
                seen.insert(pred, arity);
            }
        };
    for rule in program.rules() {
        check(rule.head.pred, rule.head.arity(), errors);
        for atom in &rule.body {
            check(atom.pred, atom.arity(), errors);
        }
    }
}

fn check_safety(program: &Program, errors: &mut Vec<ValidationError>) {
    for rule in program.rules() {
        if rule.is_range_restricted() {
            continue;
        }
        let body_vars: std::collections::BTreeSet<_> =
            rule.body.iter().flat_map(|a| a.variables()).collect();
        if let Some(v) = rule.head.variables().find(|v| !body_vars.contains(v)) {
            errors.push(ValidationError::UnsafeRule {
                rule: rule.to_string(),
                variable: v.name().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn valid_program_has_no_errors() {
        let p = parse_program("p(X, Y) :- e(X, Z), p(Z, Y). p(X, Y) :- e(X, Y).").unwrap();
        assert!(validate(&p, Safety::Strict).is_empty());
    }

    #[test]
    fn arity_mismatch_is_detected() {
        let p = parse_program("p(X) :- e(X, Y). q(X) :- e(X).").unwrap();
        let errors = validate(&p, Safety::AllowUnsafe);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], ValidationError::ArityMismatch { .. }));
    }

    #[test]
    fn unsafe_rule_is_detected_in_strict_mode_only() {
        let p = parse_program("p(X, Y) :- e(X, X).").unwrap();
        assert_eq!(validate(&p, Safety::Strict).len(), 1);
        assert!(validate(&p, Safety::AllowUnsafe).is_empty());
    }

    #[test]
    fn example_6_2_fact_rules_are_allowed_in_lenient_mode() {
        let p = parse_program("dist0(X, X). dist0(X, Y) :- e(X, Y).").unwrap();
        assert!(validate(&p, Safety::AllowUnsafe).is_empty());
        assert_eq!(validate(&p, Safety::Strict).len(), 1);
    }

    #[test]
    fn missing_goal_is_reported() {
        let p = parse_program("p(X) :- e(X).").unwrap();
        let errors = validate_with_goal(&p, Pred::new("q"), Safety::Strict);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingGoal { .. })));
        assert!(validate_with_goal(&p, Pred::new("p"), Safety::Strict).is_empty());
    }

    #[test]
    fn pair_validation_rejects_edb_redefinition() {
        // `likes` is EDB in the left program but defined in the right one.
        let left = parse_program("buys(X, Y) :- likes(X, Y).").unwrap();
        let right =
            parse_program("buys(X, Y) :- likes(X, Y). likes(X, Y) :- knows(X, Y).").unwrap();
        let errors = validate_pair(&left, &right, Pred::new("buys"), Safety::Strict);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::EdbRedefined { .. })));
    }

    #[test]
    fn pair_validation_accepts_shared_goal() {
        let left = parse_program("buys(X, Y) :- likes(X, Y). buys(X, Y) :- trendy(X), buys(Z, Y).")
            .unwrap();
        let right =
            parse_program("buys(X, Y) :- likes(X, Y). buys(X, Y) :- trendy(X), likes(Z, Y).")
                .unwrap();
        assert!(validate_pair(&left, &right, Pred::new("buys"), Safety::Strict).is_empty());
    }

    #[test]
    fn require_nonrecursive_distinguishes_programs() {
        let rec = parse_program("p(X, Y) :- e(X, Z), p(Z, Y). p(X, Y) :- e(X, Y).").unwrap();
        let nonrec = parse_program("q(X, Y) :- e(X, Y). r(X, Y) :- q(X, Z), q(Z, Y).").unwrap();
        assert!(require_nonrecursive(&rec).is_err());
        assert!(require_nonrecursive(&nonrec).is_ok());
    }
}
