//! Join-order selection for rule bodies.
//!
//! A [`JoinPlan`] is a permutation of a rule's body atoms.  The indexed
//! evaluation strategy ([`crate::eval::Strategy::Indexed`]) joins body atoms
//! in plan order instead of textual order, which keeps the intermediate
//! substitution as constrained as possible: every atom after the first is
//! chosen to share as many bound variables with the atoms already joined as
//! possible (*bound-variable connectivity*), so the per-atom index probe in
//! [`crate::index::RelationIndex::candidates`] has a bound column to use.
//!
//! The planner is a greedy heuristic, deliberately simple:
//!
//! 1. start with the atom with the most constant positions, breaking ties
//!    by the smallest estimated relation, then by textual position;
//! 2. repeatedly append the remaining atom with the most already-bound
//!    positions (bound variables + constants), with the same tie-breaks.
//!
//! Plans are recomputed per fixpoint iteration (relation sizes change as
//! facts are derived); planning is O(|body|²) over bodies of a handful of
//! atoms, which is noise next to the joins themselves.  When a semi-naive
//! delta position is given, that atom is forced first: the delta relation is
//! the smallest input by construction, and starting from it makes every
//! iteration's work proportional to the new facts.

use crate::atom::Atom;
use crate::database::Database;
use crate::term::Term;

/// A join order for one rule body: a permutation of the body positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    order: Vec<usize>,
}

impl JoinPlan {
    /// Plan a join order for `body` against `db` (see the module docs for
    /// the heuristic).
    pub fn for_body(body: &[Atom], db: &Database) -> JoinPlan {
        Self::plan(body, db, None)
    }

    /// Plan a join order with the atom at `delta_pos` forced first (the
    /// semi-naive delta atom, matched against the delta database).
    pub fn for_body_with_delta(body: &[Atom], db: &Database, delta_pos: usize) -> JoinPlan {
        Self::plan(body, db, Some(delta_pos))
    }

    fn plan(body: &[Atom], db: &Database, delta_pos: Option<usize>) -> JoinPlan {
        let sizes: Vec<usize> = body.iter().map(|a| db.relation(a.pred).len()).collect();
        let mut bound: std::collections::BTreeSet<crate::term::Var> =
            std::collections::BTreeSet::new();
        let mut remaining: Vec<usize> = (0..body.len()).collect();
        let mut order = Vec::with_capacity(body.len());

        let bind = |pos: usize, bound: &mut std::collections::BTreeSet<crate::term::Var>| {
            for v in body[pos].variables() {
                bound.insert(v);
            }
        };

        if let Some(dpos) = delta_pos {
            remaining.retain(|&p| p != dpos);
            order.push(dpos);
            bind(dpos, &mut bound);
        }

        while !remaining.is_empty() {
            // Most bound positions first, then smallest relation, then
            // textual position: all components deterministic.
            let (best_slot, _) = remaining
                .iter()
                .enumerate()
                .map(|(slot, &pos)| {
                    let bound_positions = body[pos]
                        .terms
                        .iter()
                        .filter(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v),
                        })
                        .count();
                    // Sort key: maximise bound positions, minimise size and
                    // textual position.
                    (slot, (usize::MAX - bound_positions, sizes[pos], pos))
                })
                .min_by_key(|&(_, key)| key)
                .expect("remaining is nonempty");
            let pos = remaining.remove(best_slot);
            order.push(pos);
            bind(pos, &mut bound);
        }

        JoinPlan { order }
    }

    /// The planned order: body positions, each exactly once.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of atoms in the plan.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the empty body.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Fact, Pred};
    use crate::parser::parse_rule;

    fn db_with(sizes: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for &(pred, n) in sizes {
            for i in 0..n {
                db.insert_tuple(
                    Pred::new(pred),
                    vec![
                        crate::term::Constant::from_usize(i),
                        crate::term::Constant::from_usize(i + 1),
                    ],
                );
            }
        }
        db
    }

    fn body_of(rule: &str) -> Vec<Atom> {
        parse_rule(rule).unwrap().body
    }

    fn is_permutation(plan: &JoinPlan, len: usize) -> bool {
        let mut seen = vec![false; len];
        for &p in plan.order() {
            if p >= len || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn plan_is_a_permutation_of_the_body() {
        let db = db_with(&[("e", 5), ("f", 2), ("g", 9)]);
        for rule in [
            "h(X) :- e(X, Y), f(Y, Z), g(Z, W).",
            "h(X) :- g(A, B), g(B, C), e(C, X), f(X, X).",
            "h(X) :- e(X, X).",
        ] {
            let body = body_of(rule);
            for plan in [
                JoinPlan::for_body(&body, &db),
                JoinPlan::for_body_with_delta(&body, &db, body.len() - 1),
            ] {
                assert!(is_permutation(&plan, body.len()), "{rule}: {plan:?}");
            }
        }
    }

    #[test]
    fn empty_body_plans_are_empty() {
        let db = Database::new();
        assert!(JoinPlan::for_body(&[], &db).is_empty());
    }

    #[test]
    fn smallest_relation_goes_first_when_nothing_is_bound() {
        let db = db_with(&[("big", 50), ("small", 2)]);
        let body = body_of("h(X) :- big(X, Y), small(Y, Z).");
        let plan = JoinPlan::for_body(&body, &db);
        assert_eq!(plan.order()[0], 1, "small relation first");
    }

    #[test]
    fn bound_first_ordering_holds() {
        // After the small exit relation binds Y, the planner must take the
        // atom connected through Y before the disconnected one, even though
        // the disconnected one's relation is smaller.
        let db = db_with(&[("seed", 1), ("joined", 30), ("lonely", 10)]);
        let body = body_of("h(X) :- joined(Y, Z), lonely(U, V), seed(X, Y).");
        let plan = JoinPlan::for_body(&body, &db);
        assert_eq!(plan.order()[0], 2, "seed (size 1) first");
        assert_eq!(plan.order()[1], 0, "joined shares Y with seed");
        assert_eq!(plan.order()[2], 1, "lonely last: no shared variables");
    }

    #[test]
    fn constants_count_as_bound_positions() {
        let db = db_with(&[("e", 10), ("f", 10)]);
        let body = body_of("h(X) :- e(X, Y), f(c3, Z).");
        let plan = JoinPlan::for_body(&body, &db);
        assert_eq!(plan.order()[0], 1, "constant-anchored atom first");
    }

    #[test]
    fn delta_position_is_forced_first() {
        let db = db_with(&[("e", 1), ("p", 40)]);
        let body = body_of("p(X, Y) :- e(X, Z), p(Z, Y).");
        let plan = JoinPlan::for_body_with_delta(&body, &db, 1);
        assert_eq!(plan.order(), &[1, 0]);
    }

    #[test]
    fn planning_is_deterministic() {
        let mut db = db_with(&[("e", 6), ("p", 6)]);
        db.insert(Fact::app("q", ["a", "b"]));
        let body = body_of("h(X) :- e(X, Y), p(Y, Z), q(Z, W).");
        let a = JoinPlan::for_body(&body, &db);
        let b = JoinPlan::for_body(&body, &db);
        assert_eq!(a, b);
    }
}
