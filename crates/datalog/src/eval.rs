//! Bottom-up evaluation of Datalog programs.
//!
//! Implements three fixpoint strategies — *naive*, *semi-naive*, and
//! *indexed* (semi-naive iteration with hash-index joins and join-order
//! selection, the default) — plus bounded evaluation `Q^i_Π(D)` (at most
//! `i` rule applications, §2.1), which the test suite uses for differential
//! testing of the containment decision procedures.
//!
//! All three strategies compute the same fixpoint, and iteration-for-
//! iteration the same bounded prefixes `Q^i_Π(D)`; `tests/
//! strategy_differential.rs` locks the optimized paths to the naive
//! semantics on generated instances.  [`EvalStats::probes`] (rule-body
//! match attempts) is the machine-independent cost measure the benches
//! snapshot: scans charge one probe per tuple considered, indexed joins one
//! probe per index candidate considered.
//!
//! A fourth, *goal-directed* strategy — [`Strategy::Magic`] — needs a goal
//! pattern in addition to the program and enters through
//! [`evaluate_goal_with`]: it adorns the program ([`crate::adorn`]),
//! rewrites it with magic predicates ([`crate::magic`]), runs the rewritten
//! rules through the indexed engine, and projects the guarded goal relation
//! back onto the goal predicate.  It computes the same goal-pattern answers
//! as the other strategies but not the same fixpoint (that is the point),
//! so it is exempt from the iteration-for-iteration guarantee; its
//! [`EvalStats`] describe the rewritten program's run.
//!
//! [`Strategy::Auto`] closes the loop: a planner heuristic
//! ([`resolve_auto_strategy`]) inspects the adorned dependency graph and
//! the goal-reachable region of the EDB constant graph and resolves each
//! goal evaluation to `Magic` when the goal bindings can actually prune
//! (acyclic demand region, bindings reaching the recursive calls) and to
//! `Indexed` when they cannot (all-free goals, saturating cyclic regions,
//! inapplicable programs).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use metrics::{Event, FieldValue, GlobalSink, MetricsLevel, MetricsSink};

use crate::atom::{Atom, Fact, Pred};
use crate::database::Database;
use crate::index::RelationIndex;
use crate::plan::JoinPlan;
use crate::program::Program;
use crate::substitution::Substitution;
use crate::term::Term;

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Recompute every rule over the whole database each iteration by
    /// scanning relations in textual body order.  The reference semantics.
    Naive,
    /// Only join rule bodies against at least one delta fact per iteration,
    /// still by scanning.  Kept as the scan-based baseline the probe
    /// regression tests compare against.
    SemiNaive,
    /// Semi-naive iteration with per-(predicate, column) hash-index joins
    /// ([`crate::index::RelationIndex`]) and join-order selection
    /// ([`crate::plan::JoinPlan`]).  The default.
    Indexed,
    /// Goal-directed evaluation: adorn the program for a goal pattern
    /// ([`crate::adorn`]), rewrite it with magic predicates
    /// ([`crate::magic`]), and run the rewritten rules through the indexed
    /// engine, deriving only goal-relevant facts.  Needs a goal pattern, so
    /// it only takes effect through [`evaluate_goal_with`];
    /// [`evaluate_with`] has no pattern to seed from and falls back to
    /// [`Strategy::Indexed`].
    Magic,
    /// Let the planner decide between [`Strategy::Magic`] and
    /// [`Strategy::Indexed`] per goal: magic only when the heuristic
    /// ([`resolve_auto_strategy`]) concludes the goal bindings can actually
    /// prune the fixpoint, indexed otherwise.  Like `Magic`, it needs a
    /// goal pattern; [`evaluate_with`] falls back to `Indexed`.
    Auto,
}

impl Strategy {
    /// Every strategy, in refinement order.
    pub const ALL: [Strategy; 5] = [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Indexed,
        Strategy::Magic,
        Strategy::Auto,
    ];

    /// The stable wire/CLI name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "semi_naive",
            Strategy::Indexed => "indexed",
            Strategy::Magic => "magic",
            Strategy::Auto => "auto",
        }
    }

    /// Parse a wire/CLI strategy name (the inverse of [`Strategy::name`];
    /// `semi-naive` is accepted as an alias).
    pub fn parse(name: &str) -> Option<Strategy> {
        match name {
            "naive" => Some(Strategy::Naive),
            "semi_naive" | "semi-naive" => Some(Strategy::SemiNaive),
            "indexed" => Some(Strategy::Indexed),
            "magic" => Some(Strategy::Magic),
            "auto" => Some(Strategy::Auto),
            _ => None,
        }
    }
}

/// Options controlling evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Which fixpoint strategy to use.
    pub strategy: Strategy,
    /// If set, stop after this many iterations of the fixpoint loop
    /// (computes `Q^i_Π(D)` rather than `Q_Π(D)`).
    pub max_iterations: Option<usize>,
    /// If set, abort (returning the partial result) once this many IDB facts
    /// have been derived.  A safety valve for randomly generated inputs.
    pub max_facts: Option<usize>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            strategy: Strategy::Indexed,
            max_iterations: None,
            max_facts: None,
        }
    }
}

/// Statistics reported by an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations executed.
    pub iterations: usize,
    /// Number of IDB facts derived (excluding EDB facts).
    pub derived_facts: usize,
    /// Number of rule-body match attempts (join probes), a machine-
    /// independent cost measure used by the evaluation benches.
    pub probes: usize,
}

/// The result of evaluating a program on a database.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// EDB facts plus all derived IDB facts.
    pub database: Database,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The relation computed for a goal predicate.
    pub fn relation(&self, goal: Pred) -> &crate::database::Relation {
        self.database.relation(goal)
    }
}

/// Evaluate `program` on `edb` with default options (indexed joins, to
/// fixpoint).
pub fn evaluate(program: &Program, edb: &Database) -> EvalResult {
    evaluate_with(program, edb, EvalOptions::default())
}

/// Evaluate `program` on `edb` with explicit options.
///
/// [`Strategy::Magic`] needs a goal pattern to seed from; without one it
/// falls back to [`Strategy::Indexed`] here.  Use [`evaluate_goal_with`]
/// to actually run goal-directed.
pub fn evaluate_with(program: &Program, edb: &Database, options: EvalOptions) -> EvalResult {
    evaluate_with_sink(program, edb, options, &mut GlobalSink)
}

/// [`evaluate_with`], emitting structured events into `sink`.
///
/// The engine is generic over the sink and guards every emission with a
/// level check, so a [`metrics::NoMetrics`] sink monomorphizes to the
/// uninstrumented loop.  At [`MetricsLevel::Counters`] one `eval` summary
/// event is emitted per run; [`MetricsLevel::Debug`] adds per-`iteration`
/// events and per-predicate `delta` sizes; [`MetricsLevel::Trace`] adds one
/// `join` event per rule derivation carrying its probe delta.
pub fn evaluate_with_sink<S: MetricsSink>(
    program: &Program,
    edb: &Database,
    options: EvalOptions,
    sink: &mut S,
) -> EvalResult {
    match options.strategy {
        Strategy::Naive => naive(program, edb, options, sink),
        Strategy::SemiNaive => delta_fixpoint(program, edb, options, JoinMode::Scan, sink),
        Strategy::Indexed | Strategy::Magic | Strategy::Auto => {
            delta_fixpoint(program, edb, options, JoinMode::Indexed, sink)
        }
    }
}

/// Evaluate `program` on `edb` for a goal pattern with default options.
pub fn evaluate_goal(program: &Program, edb: &Database, goal_pattern: &Atom) -> EvalResult {
    evaluate_goal_with(program, edb, goal_pattern, EvalOptions::default())
}

/// Evaluate `program` on `edb` *for a goal pattern*: constant positions of
/// `goal_pattern` are bound, variable positions free.  The result database
/// is the EDB plus exactly the goal-predicate facts of the fixpoint that
/// match the pattern — identical for every strategy, which is what the
/// magic-vs-indexed differential suite locks.
///
/// Under [`Strategy::Magic`] (and when [`crate::magic::magic_applicable`]
/// holds — otherwise this falls back to the indexed fixpoint with the same
/// restricted result) the program is adorned and rewritten so the fixpoint
/// derives only goal-relevant facts; on selective patterns this probes far
/// fewer tuples than evaluating blind.  The returned [`EvalStats`] then
/// describe the rewritten program's run: `derived_facts` counts magic +
/// guarded facts, `iterations` counts the rewritten fixpoint's rounds, and
/// neither is comparable to the unrewritten `Q^i_Π(D)` prefixes.
///
/// ```
/// use datalog::atom::{Atom, Fact, Pred};
/// use datalog::eval::{evaluate_goal_with, EvalOptions, Strategy};
/// use datalog::generate::chain_database;
/// use datalog::program::Program;
/// use datalog::rule::Rule;
/// use datalog::term::{Constant, Term};
///
/// // Transitive closure of a 4-edge chain, asked only for p(c0, c4).
/// let tc = Program::new(vec![
///     Rule::new(
///         Atom::app("p", ["X", "Y"]),
///         vec![Atom::app("e", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
///     ),
///     Rule::new(Atom::app("p", ["X", "Y"]), vec![Atom::app("e", ["X", "Y"])]),
/// ]);
/// let db = chain_database("e", 4);
/// let goal = Atom::new(
///     Pred::new("p"),
///     vec![
///         Term::Const(Constant::from_usize(0)),
///         Term::Const(Constant::from_usize(4)),
///     ],
/// );
/// let result = evaluate_goal_with(
///     &tc,
///     &db,
///     &goal,
///     EvalOptions { strategy: Strategy::Auto, ..EvalOptions::default() },
/// );
/// assert!(result.database.contains(&Fact::app("p", ["c0", "c4"])));
/// assert_eq!(result.relation(Pred::new("p")).len(), 1);
/// ```
pub fn evaluate_goal_with(
    program: &Program,
    edb: &Database,
    goal_pattern: &Atom,
    options: EvalOptions,
) -> EvalResult {
    evaluate_goal_with_sink(program, edb, goal_pattern, options, &mut GlobalSink)
}

/// [`evaluate_goal_with`], emitting structured events into `sink`.
///
/// In addition to the fixpoint events of [`evaluate_with_sink`], at
/// [`MetricsLevel::Counters`] and above this emits one `strategy` event per
/// goal evaluation recording the requested strategy, what it resolved to,
/// and the planner's reason (for [`Strategy::Auto`], which of the four
/// [`resolve_auto_strategy`] conditions decided).
pub fn evaluate_goal_with_sink<S: MetricsSink>(
    program: &Program,
    edb: &Database,
    goal_pattern: &Atom,
    options: EvalOptions,
    sink: &mut S,
) -> EvalResult {
    let mut options = options;
    let requested = options.strategy;
    let mut reason = "strategy requested explicitly";
    if options.strategy == Strategy::Auto {
        let (resolved, why) = resolve_auto_strategy_explained(program, edb, goal_pattern);
        options.strategy = resolved;
        reason = why;
    }
    let goal = goal_pattern.pred;
    let magic_path =
        options.strategy == Strategy::Magic && crate::magic::magic_applicable(program, goal, edb);
    let effective = match options.strategy {
        Strategy::Magic if !magic_path => {
            reason = "magic requested but inapplicable; indexed fallback";
            Strategy::Indexed
        }
        other => other,
    };
    if sink.level() >= MetricsLevel::Counters {
        sink.emit(Event::new(
            "strategy",
            vec![
                ("goal", FieldValue::Text(goal.name().to_string())),
                ("requested", FieldValue::Text(requested.name().to_string())),
                ("resolved", FieldValue::Text(effective.name().to_string())),
                ("reason", FieldValue::Text(reason.to_string())),
            ],
        ));
    }
    if magic_path {
        let adorned =
            crate::adorn::adorn_program(program, goal_pattern, crate::adorn::Sips::default());
        let magic = crate::magic::magic_rewrite(&adorned);
        let inner = evaluate_with_sink(&magic.program, edb, options, sink);
        return restrict_to_goal(edb, &inner, magic.goal, goal, goal_pattern);
    }
    let inner = evaluate_with_sink(
        program,
        edb,
        EvalOptions {
            strategy: effective,
            ..options
        },
        sink,
    );
    restrict_to_goal(edb, &inner, goal, goal, goal_pattern)
}

/// The [`Strategy::Auto`] planner: decide, for one goal pattern, whether
/// the magic-set rewrite can actually prune the fixpoint ([`Strategy::
/// Magic`]) or would only add rewrite overhead ([`Strategy::Indexed`]).
///
/// Magic wins exactly when the demand set it seeds from the goal's bound
/// constants stays a *strict* frontier of the database.  The heuristic
/// checks, in order:
///
/// 1. **Applicability** — [`crate::magic::magic_applicable`] must hold
///    (otherwise [`evaluate_goal_with`] would silently fall back anyway).
/// 2. **Goal bindings** — the goal adornment must bind at least one
///    position; an all-free goal passes nothing sideways and the rewrite
///    degenerates to the plain program plus guard bookkeeping.
/// 3. **Binding propagation** — over the adorned dependency graph
///    ([`crate::adorn::adorn_program`], which already restricts to the
///    rules reachable from the goal), some reachable IDB call must receive
///    a binding.  If every reachable call site is all-free, each recursive
///    step drops the goal's bindings on the floor and the magic predicates
///    degenerate to "everything".
/// 4. **Demand saturation** — the data-level check that separates workloads
///    the program-level analysis cannot (chain and cycle databases adorn
///    identically): walk the directed constant graph induced by the binary
///    EDB relations the reachable rules join over, starting from the goal's
///    bound constants.  If that reachable region contains a cycle, the
///    demand frontier saturates — every fact becomes goal-relevant, magic
///    derives the same facts *plus* the magic relations, and indexed
///    evaluation is cheaper.  Acyclic regions keep the frontier strict and
///    magic prunes.
///
/// The result is what [`evaluate_goal_with`] resolves `Auto` to; it is
/// exported so decision-procedure layers can resolve (and count) the
/// choice themselves.
pub fn resolve_auto_strategy(program: &Program, edb: &Database, goal_pattern: &Atom) -> Strategy {
    resolve_auto_strategy_explained(program, edb, goal_pattern).0
}

/// [`resolve_auto_strategy`] plus a stable one-line reason naming which of
/// the four planner conditions decided.  The reason strings are wire
/// vocabulary: the `trace` verb reports them verbatim in its `strategy`
/// event.
pub fn resolve_auto_strategy_explained(
    program: &Program,
    edb: &Database,
    goal_pattern: &Atom,
) -> (Strategy, &'static str) {
    if !crate::magic::magic_applicable(program, goal_pattern.pred, edb) {
        return (
            Strategy::Indexed,
            "magic rewrite inapplicable to this program/database",
        );
    }
    let adorned = crate::adorn::adorn_program(program, goal_pattern, crate::adorn::Sips::default());
    if adorned.goal_adornment.is_all_free() {
        return (Strategy::Indexed, "goal adornment binds no position");
    }
    let idb_calls: Vec<&crate::adorn::Adornment> = adorned
        .rules
        .iter()
        .flat_map(|rule| rule.body.iter())
        .filter_map(|body_atom| body_atom.adornment.as_ref())
        .collect();
    if !idb_calls.is_empty() && idb_calls.iter().all(|a| a.is_all_free()) {
        return (
            Strategy::Indexed,
            "no reachable IDB call receives a binding",
        );
    }
    // The EDB relations the reachable rules actually join over.
    let edb_preds: BTreeSet<Pred> = adorned
        .rules
        .iter()
        .flat_map(|rule| rule.body.iter())
        .filter(|body_atom| body_atom.adornment.is_none())
        .map(|body_atom| body_atom.atom.pred)
        .collect();
    let seeds: Vec<crate::term::Constant> = goal_pattern
        .terms
        .iter()
        .filter_map(|t| match *t {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        })
        .collect();
    if demand_region_has_cycle(edb, &edb_preds, &seeds) {
        (
            Strategy::Indexed,
            "demand region is cyclic; the frontier saturates",
        )
    } else {
        (
            Strategy::Magic,
            "bound goal with an acyclic demand region; magic prunes",
        )
    }
}

/// Is there a cycle in the portion of the EDB constant graph reachable
/// from `seeds`?  Edges come from the binary relations in `edb_preds`
/// (first column → second column); wider or narrower relations induce no
/// traversal edges and are ignored.  Iterative colour DFS, so deep chains
/// cannot overflow the stack.
fn demand_region_has_cycle(
    edb: &Database,
    edb_preds: &BTreeSet<Pred>,
    seeds: &[crate::term::Constant],
) -> bool {
    use crate::term::Constant;
    let mut adjacency: std::collections::BTreeMap<Constant, Vec<Constant>> =
        std::collections::BTreeMap::new();
    for &pred in edb_preds {
        for tuple in edb.relation(pred).iter() {
            if let [from, to] = tuple.as_slice() {
                adjacency.entry(*from).or_default().push(*to);
            }
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        OnPath,
        Done,
    }
    let mut colour: std::collections::BTreeMap<Constant, Colour> =
        std::collections::BTreeMap::new();
    for &seed in seeds {
        if colour.contains_key(&seed) {
            continue;
        }
        // Stack of (node, next child position) frames.
        let mut stack: Vec<(Constant, usize)> = vec![(seed, 0)];
        colour.insert(seed, Colour::OnPath);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                match colour.get(&child) {
                    Some(Colour::OnPath) => return true, // back edge
                    Some(Colour::Done) => {}
                    None => {
                        colour.insert(child, Colour::OnPath);
                        stack.push((child, 0));
                    }
                }
            } else {
                colour.insert(node, Colour::Done);
                stack.pop();
            }
        }
    }
    false
}

/// Build the strategy-independent result of [`evaluate_goal_with`]: the
/// EDB plus the `source` relation's tuples that match the pattern, stored
/// under `goal`.
fn restrict_to_goal(
    edb: &Database,
    inner: &EvalResult,
    source: Pred,
    goal: Pred,
    goal_pattern: &Atom,
) -> EvalResult {
    let mut database = edb.clone();
    for tuple in inner.database.relation(source).iter() {
        if Substitution::new().match_tuple(goal_pattern, tuple) {
            database.insert(Fact::new(goal, tuple.clone()));
        }
    }
    EvalResult {
        database,
        stats: inner.stats,
    }
}

/// How [`derive_rule`] enumerates candidate tuples for each body atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JoinMode {
    /// Scan the whole relation per atom, in textual body order.  The
    /// reference behaviour; probe counts match the pre-index engine.
    Scan,
    /// Probe [`RelationIndex`] posting lists, joining in [`JoinPlan`] order.
    Indexed,
}

/// Emit the per-iteration `iteration` + per-predicate `delta` events shared
/// by both fixpoint loops.  Callers guard at [`MetricsLevel::Debug`].
fn emit_iteration_events<S: MetricsSink>(
    sink: &mut S,
    iteration: usize,
    inserted: &BTreeMap<Pred, u64>,
    probes: usize,
) {
    let new_facts: u64 = inserted.values().sum();
    sink.emit(Event::new(
        "iteration",
        vec![
            ("index", FieldValue::Num(iteration as u64)),
            ("new_facts", FieldValue::Num(new_facts)),
            ("probes", FieldValue::Num(probes as u64)),
        ],
    ));
    for (&pred, &count) in inserted {
        sink.emit(Event::new(
            "delta",
            vec![
                ("iteration", FieldValue::Num(iteration as u64)),
                ("pred", FieldValue::Text(pred.name().to_string())),
                ("facts", FieldValue::Num(count)),
            ],
        ));
    }
}

/// Emit the `Counters`-level `eval` summary event for a finished run.
fn emit_eval_summary<S: MetricsSink>(sink: &mut S, strategy: &'static str, stats: &EvalStats) {
    sink.emit(Event::new(
        "eval",
        vec![
            ("strategy", FieldValue::Text(strategy.to_string())),
            ("iterations", FieldValue::Num(stats.iterations as u64)),
            ("derived_facts", FieldValue::Num(stats.derived_facts as u64)),
            ("probes", FieldValue::Num(stats.probes as u64)),
        ],
    ));
}

/// Naive evaluation: repeat "apply every rule to the full database" until no
/// new facts appear.
fn naive<S: MetricsSink>(
    program: &Program,
    edb: &Database,
    options: EvalOptions,
    sink: &mut S,
) -> EvalResult {
    let mut db = edb.clone();
    let mut stats = EvalStats::default();
    loop {
        if options
            .max_iterations
            .is_some_and(|max| stats.iterations >= max)
        {
            break;
        }
        stats.iterations += 1;
        let mut new_facts: Vec<Fact> = Vec::new();
        for (rule_index, rule) in program.rules().iter().enumerate() {
            let probes_before = stats.probes;
            derive_rule(
                rule.head.clone(),
                &rule.body,
                &db,
                None,
                JoinMode::Scan,
                &mut new_facts,
                &mut stats.probes,
            );
            if sink.level() >= MetricsLevel::Trace {
                sink.emit(Event::new(
                    "join",
                    vec![
                        ("iteration", FieldValue::Num(stats.iterations as u64)),
                        ("rule", FieldValue::Num(rule_index as u64)),
                        (
                            "probes",
                            FieldValue::Num((stats.probes - probes_before) as u64),
                        ),
                    ],
                ));
            }
        }
        let mut changed = false;
        let mut inserted: BTreeMap<Pred, u64> = BTreeMap::new();
        for fact in new_facts {
            let pred = fact.pred;
            if db.insert(fact) {
                stats.derived_facts += 1;
                changed = true;
                if sink.level() >= MetricsLevel::Debug {
                    *inserted.entry(pred).or_insert(0) += 1;
                }
            }
        }
        if sink.level() >= MetricsLevel::Debug {
            emit_iteration_events(sink, stats.iterations, &inserted, stats.probes);
        }
        if options
            .max_facts
            .is_some_and(|max| stats.derived_facts >= max)
        {
            break;
        }
        if !changed {
            break;
        }
    }
    if sink.level() >= MetricsLevel::Counters {
        emit_eval_summary(sink, "naive", &stats);
    }
    EvalResult {
        database: db,
        stats,
    }
}

/// Semi-naive fixpoint shared by [`Strategy::SemiNaive`] (scan joins) and
/// [`Strategy::Indexed`] (index joins): each iteration after the first only
/// considers rule instantiations whose body uses at least one fact derived
/// in the previous iteration.  Iteration `i` derives exactly the new facts
/// of naive iteration `i`, so bounded prefixes `Q^i_Π(D)` agree across all
/// strategies.
fn delta_fixpoint<S: MetricsSink>(
    program: &Program,
    edb: &Database,
    options: EvalOptions,
    mode: JoinMode,
    sink: &mut S,
) -> EvalResult {
    let mut db = edb.clone();
    let mut stats = EvalStats::default();

    // Iteration 1 is a full (naive) pass: the "delta" is the EDB itself.
    let mut delta: BTreeSet<Fact> = BTreeSet::new();
    if options.max_iterations != Some(0) {
        stats.iterations += 1;
        let mut new_facts = Vec::new();
        for (rule_index, rule) in program.rules().iter().enumerate() {
            let probes_before = stats.probes;
            derive_rule(
                rule.head.clone(),
                &rule.body,
                &db,
                None,
                mode,
                &mut new_facts,
                &mut stats.probes,
            );
            if sink.level() >= MetricsLevel::Trace {
                sink.emit(Event::new(
                    "join",
                    vec![
                        ("iteration", FieldValue::Num(stats.iterations as u64)),
                        ("rule", FieldValue::Num(rule_index as u64)),
                        (
                            "probes",
                            FieldValue::Num((stats.probes - probes_before) as u64),
                        ),
                    ],
                ));
            }
        }
        for fact in new_facts {
            if db.insert(fact.clone()) {
                stats.derived_facts += 1;
                delta.insert(fact);
            }
        }
        if sink.level() >= MetricsLevel::Debug {
            let inserted = count_by_pred(&delta);
            emit_iteration_events(sink, stats.iterations, &inserted, stats.probes);
        }
    }

    while !delta.is_empty() {
        if options
            .max_iterations
            .is_some_and(|max| stats.iterations >= max)
        {
            break;
        }
        if options
            .max_facts
            .is_some_and(|max| stats.derived_facts >= max)
        {
            break;
        }
        stats.iterations += 1;
        let mut new_facts: Vec<Fact> = Vec::new();
        let delta_db = Database::from_facts(delta.iter().cloned());
        for (rule_index, rule) in program.rules().iter().enumerate() {
            // For each body position holding a predicate present in the
            // delta, require that position to match a delta fact.
            for (pos, atom) in rule.body.iter().enumerate() {
                if delta_db.relation(atom.pred).is_empty() {
                    continue;
                }
                let probes_before = stats.probes;
                derive_rule(
                    rule.head.clone(),
                    &rule.body,
                    &db,
                    Some((pos, &delta_db)),
                    mode,
                    &mut new_facts,
                    &mut stats.probes,
                );
                if sink.level() >= MetricsLevel::Trace {
                    sink.emit(Event::new(
                        "join",
                        vec![
                            ("iteration", FieldValue::Num(stats.iterations as u64)),
                            ("rule", FieldValue::Num(rule_index as u64)),
                            ("delta_pos", FieldValue::Num(pos as u64)),
                            (
                                "probes",
                                FieldValue::Num((stats.probes - probes_before) as u64),
                            ),
                        ],
                    ));
                }
            }
            // Rules with empty bodies fire once, in the first iteration,
            // which the full pass above already handled.
        }
        let mut next_delta = BTreeSet::new();
        for fact in new_facts {
            if db.insert(fact.clone()) {
                stats.derived_facts += 1;
                next_delta.insert(fact);
            }
        }
        if sink.level() >= MetricsLevel::Debug {
            let inserted = count_by_pred(&next_delta);
            emit_iteration_events(sink, stats.iterations, &inserted, stats.probes);
        }
        delta = next_delta;
    }

    if sink.level() >= MetricsLevel::Counters {
        let strategy = match mode {
            JoinMode::Scan => "semi_naive",
            JoinMode::Indexed => "indexed",
        };
        emit_eval_summary(sink, strategy, &stats);
    }
    EvalResult {
        database: db,
        stats,
    }
}

/// Count a delta set's facts per predicate (for the Debug `delta` events).
fn count_by_pred(delta: &BTreeSet<Fact>) -> BTreeMap<Pred, u64> {
    let mut counts = BTreeMap::new();
    for fact in delta {
        *counts.entry(fact.pred).or_insert(0) += 1;
    }
    counts
}

/// Enumerate all instantiations of `body` against `db` (with the atom at
/// `delta_pos`, if given, matched against the delta database instead) and
/// emit the corresponding ground heads.
///
/// In [`JoinMode::Scan`] the body is joined in textual order, each atom
/// against a full scan of its relation.  In [`JoinMode::Indexed`] the body
/// is joined in [`JoinPlan`] order and each atom enumerates only the rows
/// of the most selective bound-column posting list
/// ([`RelationIndex::candidates`]).  Both modes charge one probe per
/// candidate tuple considered.
fn derive_rule(
    head: Atom,
    body: &[Atom],
    db: &Database,
    delta: Option<(usize, &Database)>,
    mode: JoinMode,
    out: &mut Vec<Fact>,
    probes: &mut usize,
) {
    struct JoinCtx<'a> {
        head: &'a Atom,
        body: &'a [Atom],
        db: &'a Database,
        delta: Option<(usize, &'a Database)>,
        /// Body positions in join order (identity for scans).
        order: Vec<usize>,
        /// Index snapshot per body position; `None` in scan mode.
        indexes: Vec<Option<Arc<RelationIndex>>>,
    }

    fn source_db<'a>(
        db: &'a Database,
        delta: Option<(usize, &'a Database)>,
        pos: usize,
    ) -> &'a Database {
        match delta {
            Some((dpos, delta_db)) if dpos == pos => delta_db,
            _ => db,
        }
    }

    fn rec(
        ctx: &JoinCtx<'_>,
        step: usize,
        subst: &mut Substitution,
        out: &mut Vec<Fact>,
        probes: &mut usize,
    ) {
        if step == ctx.order.len() {
            let ground = subst.apply_atom(ctx.head);
            if let Some(fact) = ground.to_fact() {
                out.push(fact);
            }
            return;
        }
        let pos = ctx.order[step];
        let atom = &ctx.body[pos];
        // One loop body for both modes — only the candidate source differs
        // (the probe accounting below must stay identical across modes; the
        // probe regression gate compares the two).
        let mut indexed_candidates;
        let mut scan_candidates;
        let candidates: &mut dyn Iterator<Item = &[crate::term::Constant]> = match &ctx.indexes[pos]
        {
            Some(index) => {
                indexed_candidates = index.candidates(atom, subst);
                &mut indexed_candidates
            }
            None => {
                let source = source_db(ctx.db, ctx.delta, pos);
                scan_candidates = source.relation(atom.pred).iter().map(Vec::as_slice);
                &mut scan_candidates
            }
        };
        for tuple in candidates {
            *probes += 1;
            let mut attempt = subst.clone();
            if attempt.match_tuple(atom, tuple) {
                rec(ctx, step + 1, &mut attempt, out, probes);
            }
        }
    }

    // Rules with empty bodies: emit the head if it is ground.
    if body.is_empty() {
        if let Some(fact) = head.to_fact() {
            out.push(fact);
        } else if head.terms.iter().any(|t| matches!(t, Term::Var(_))) {
            // Non-ground empty-body rules (e.g. `dist0(x, x) :-` from
            // Example 6.2) are instantiated over the active domain of the
            // database, the standard finite-domain reading.
            instantiate_over_domain(&head, db, out);
        }
        return;
    }
    let (order, indexes) = match mode {
        JoinMode::Scan => ((0..body.len()).collect(), vec![None; body.len()]),
        JoinMode::Indexed => {
            let plan = match delta {
                Some((dpos, _)) => JoinPlan::for_body_with_delta(body, db, dpos),
                None => JoinPlan::for_body(body, db),
            };
            // Snapshot each atom's source index once per derivation; new
            // facts are buffered by the caller, so the snapshots stay valid
            // for the whole derivation.
            let indexes = body
                .iter()
                .enumerate()
                .map(|(pos, atom)| Some(source_db(db, delta, pos).index(atom.pred)))
                .collect();
            (plan.order().to_vec(), indexes)
        }
    };
    let ctx = JoinCtx {
        head: &head,
        body,
        db,
        delta,
        order,
        indexes,
    };
    let mut subst = Substitution::new();
    rec(&ctx, 0, &mut subst, out, probes);
}

/// Instantiate a non-ground atom over the active domain of the database
/// (all variables range over all constants).
fn instantiate_over_domain(head: &Atom, db: &Database, out: &mut Vec<Fact>) {
    let domain: Vec<_> = db.active_domain().into_iter().collect();
    if domain.is_empty() {
        return;
    }
    let vars: Vec<_> = {
        let mut seen = BTreeSet::new();
        head.variables().filter(|v| seen.insert(*v)).collect()
    };
    let mut assignment = vec![0usize; vars.len()];
    loop {
        let mut subst = Substitution::new();
        for (v, &i) in vars.iter().zip(&assignment) {
            subst.bind_var(*v, Term::Const(domain[i]));
        }
        if let Some(fact) = subst.apply_atom(head).to_fact() {
            out.push(fact);
        }
        // Advance the odometer.
        let mut carry = true;
        for slot in assignment.iter_mut() {
            if carry {
                *slot += 1;
                if *slot == domain.len() {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::rule::Rule;
    use crate::term::Constant;

    fn tc() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::app("p", ["X", "Y"]),
                vec![Atom::app("e", ["X", "Z"]), Atom::app("p", ["Z", "Y"])],
            ),
            Rule::new(Atom::app("p", ["X", "Y"]), vec![Atom::app("e", ["X", "Y"])]),
        ])
    }

    fn chain(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_tuple(
                Pred::new("e"),
                vec![Constant::from_usize(i), Constant::from_usize(i + 1)],
            );
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = chain(5);
        let result = evaluate(&tc(), &db);
        // All pairs (i, j) with i < j ≤ 5: 5+4+3+2+1 = 15.
        assert_eq!(result.relation(Pred::new("p")).len(), 15);
        assert!(result.database.contains(&Fact::app("p", ["c0", "c5"])));
        assert!(!result.database.contains(&Fact::app("p", ["c5", "c0"])));
    }

    fn with_strategy(strategy: Strategy) -> EvalOptions {
        EvalOptions {
            strategy,
            ..EvalOptions::default()
        }
    }

    #[test]
    fn all_strategies_agree() {
        let db = chain(8);
        let naive = evaluate_with(&tc(), &db, with_strategy(Strategy::Naive));
        let semi = evaluate_with(&tc(), &db, with_strategy(Strategy::SemiNaive));
        let indexed = evaluate_with(&tc(), &db, EvalOptions::default());
        assert_eq!(
            naive.relation(Pred::new("p")),
            semi.relation(Pred::new("p"))
        );
        assert_eq!(naive.database, indexed.database);
        // Each refinement must not do more probes than the one it refines
        // on this workload.
        assert!(semi.stats.probes <= naive.stats.probes);
        assert!(indexed.stats.probes <= semi.stats.probes);
    }

    #[test]
    fn indexed_is_the_default_strategy() {
        assert_eq!(EvalOptions::default().strategy, Strategy::Indexed);
    }

    #[test]
    fn strategies_agree_iteration_by_iteration() {
        let db = chain(6);
        for i in 0..=5 {
            let mut results = [Strategy::Naive, Strategy::SemiNaive, Strategy::Indexed]
                .map(|strategy| {
                    evaluate_with(
                        &tc(),
                        &db,
                        EvalOptions {
                            max_iterations: Some(i),
                            ..with_strategy(strategy)
                        },
                    )
                })
                .into_iter();
            let reference = results.next().unwrap();
            for other in results {
                assert_eq!(reference.database, other.database, "iteration bound {i}");
            }
        }
    }

    #[test]
    fn bounded_evaluation_computes_partial_fixpoint() {
        let db = chain(6);
        // One iteration: only paths of length 1.
        let one = evaluate_with(
            &tc(),
            &db,
            EvalOptions {
                max_iterations: Some(1),
                ..EvalOptions::default()
            },
        );
        assert_eq!(one.relation(Pred::new("p")).len(), 6);
        // Two iterations: paths of length ≤ 2.
        let two = evaluate_with(
            &tc(),
            &db,
            EvalOptions {
                max_iterations: Some(2),
                ..EvalOptions::default()
            },
        );
        assert_eq!(two.relation(Pred::new("p")).len(), 6 + 5);
    }

    #[test]
    fn zero_iterations_derives_nothing() {
        let db = chain(3);
        let r = evaluate_with(
            &tc(),
            &db,
            EvalOptions {
                max_iterations: Some(0),
                ..EvalOptions::default()
            },
        );
        assert!(r.relation(Pred::new("p")).is_empty());
        assert_eq!(r.stats.derived_facts, 0);
    }

    #[test]
    fn empty_body_ground_rule_fires_once() {
        let p = Program::new(vec![Rule::fact(Atom::app("t", ["a", "b"]))]);
        let r = evaluate(&p, &Database::new());
        assert!(r.database.contains(&Fact::app("t", ["a", "b"])));
    }

    #[test]
    fn empty_body_nonground_rule_ranges_over_active_domain() {
        // dist0(X, X). over a database with domain {a, b}.
        let p = Program::new(vec![Rule::fact(Atom::app("d", ["X", "X"]))]);
        let db = Database::from_facts([Fact::app("e", ["a", "b"])]);
        let r = evaluate(&p, &db);
        assert!(r.database.contains(&Fact::app("d", ["a", "a"])));
        assert!(r.database.contains(&Fact::app("d", ["b", "b"])));
        assert_eq!(r.relation(Pred::new("d")).len(), 2);
    }

    #[test]
    fn mutually_recursive_even_odd() {
        let p = Program::new(vec![
            Rule::new(Atom::app("even", ["X"]), vec![Atom::app("zero", ["X"])]),
            Rule::new(
                Atom::app("even", ["X"]),
                vec![Atom::app("succ", ["Y", "X"]), Atom::app("odd", ["Y"])],
            ),
            Rule::new(
                Atom::app("odd", ["X"]),
                vec![Atom::app("succ", ["Y", "X"]), Atom::app("even", ["Y"])],
            ),
        ]);
        let mut db = Database::new();
        db.insert(Fact::app("zero", ["n0"]));
        for i in 0..6 {
            db.insert(Fact::app(
                "succ",
                [format!("n{i}").as_str(), format!("n{}", i + 1).as_str()],
            ));
        }
        let r = evaluate(&p, &db);
        assert!(r.database.contains(&Fact::app("even", ["n4"])));
        assert!(r.database.contains(&Fact::app("odd", ["n5"])));
        assert!(!r.database.contains(&Fact::app("even", ["n5"])));
    }

    #[test]
    fn fact_limit_stops_evaluation_early() {
        let db = chain(30);
        let r = evaluate_with(
            &tc(),
            &db,
            EvalOptions {
                max_facts: Some(10),
                ..EvalOptions::default()
            },
        );
        assert!(r.stats.derived_facts >= 10);
        assert!(r.stats.derived_facts < 30 * 31 / 2);
    }

    #[test]
    fn result_contains_edb_facts() {
        let db = chain(2);
        let r = evaluate(&tc(), &db);
        assert!(r.database.contains(&Fact::app("e", ["c0", "c1"])));
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in Strategy::ALL {
            assert_eq!(Strategy::parse(strategy.name()), Some(strategy));
        }
        assert_eq!(Strategy::parse("semi-naive"), Some(Strategy::SemiNaive));
        assert_eq!(Strategy::parse("nonsense"), None);
    }

    fn bound_goal(n: usize) -> Atom {
        Atom::new(
            Pred::new("p"),
            vec![
                Term::Const(Constant::from_usize(0)),
                Term::Const(Constant::from_usize(n)),
            ],
        )
    }

    #[test]
    fn goal_directed_strategies_agree_on_the_pattern() {
        let db = chain(8);
        let goal = bound_goal(8);
        let mut results = Strategy::ALL
            .map(|strategy| evaluate_goal_with(&tc(), &db, &goal, with_strategy(strategy)))
            .into_iter();
        let reference = results.next().unwrap();
        assert!(reference.database.contains(&Fact::app("p", ["c0", "c8"])));
        // The restricted result is one goal fact plus the EDB, regardless
        // of strategy.
        assert_eq!(reference.relation(Pred::new("p")).len(), 1);
        for other in results {
            assert_eq!(reference.database, other.database);
        }
    }

    #[test]
    fn magic_probes_beat_indexed_on_a_bound_chain_query() {
        let db = chain(16);
        let goal = bound_goal(16);
        let indexed = evaluate_goal_with(&tc(), &db, &goal, with_strategy(Strategy::Indexed));
        let magic = evaluate_goal_with(&tc(), &db, &goal, with_strategy(Strategy::Magic));
        assert_eq!(indexed.database, magic.database);
        assert!(
            magic.stats.probes < indexed.stats.probes,
            "magic {} probes >= indexed {}",
            magic.stats.probes,
            indexed.stats.probes
        );
        assert!(magic.stats.derived_facts < indexed.stats.derived_facts);
    }

    #[test]
    fn magic_without_a_pattern_falls_back_to_indexed() {
        let db = chain(6);
        let via_magic = evaluate_with(&tc(), &db, with_strategy(Strategy::Magic));
        let via_indexed = evaluate_with(&tc(), &db, with_strategy(Strategy::Indexed));
        assert_eq!(via_magic.database, via_indexed.database);
        assert_eq!(via_magic.stats, via_indexed.stats);
    }

    #[test]
    fn magic_falls_back_when_the_edb_holds_idb_facts() {
        // Canonical databases of queries that mention the goal predicate
        // store base facts under it; magic must not lose them.
        let mut db = chain(4);
        db.insert(Fact::app("p", ["c4", "c9"]));
        let goal = Atom::new(
            Pred::new("p"),
            vec![
                Term::Const(Constant::from_usize(0)),
                Term::Const(Constant::new("c9")),
            ],
        );
        let magic = evaluate_goal_with(&tc(), &db, &goal, with_strategy(Strategy::Magic));
        let indexed = evaluate_goal_with(&tc(), &db, &goal, with_strategy(Strategy::Indexed));
        assert_eq!(magic.database, indexed.database);
        // Reachable only through the seeded IDB fact: c0 →* c4 → c9.
        assert!(magic.database.contains(&Fact::app("p", ["c0", "c9"])));
    }

    #[test]
    fn magic_falls_back_on_nonground_empty_body_rules() {
        let mut rules = tc().rules().to_vec();
        rules.push(Rule::fact(Atom::app("p", ["X", "X"])));
        let program = Program::new(rules);
        let db = chain(4);
        let goal = Atom::new(
            Pred::new("p"),
            vec![
                Term::Const(Constant::from_usize(2)),
                Term::Const(Constant::from_usize(2)),
            ],
        );
        let magic = evaluate_goal_with(&program, &db, &goal, with_strategy(Strategy::Magic));
        let indexed = evaluate_goal_with(&program, &db, &goal, with_strategy(Strategy::Indexed));
        assert_eq!(magic.database, indexed.database);
        // The reflexive fact comes from domain instantiation only.
        assert!(magic.database.contains(&Fact::app("p", ["c2", "c2"])));
    }

    #[test]
    fn auto_resolves_to_magic_only_when_pruning_is_possible() {
        use crate::generate::{chain_database, cycle_database};
        // Chain data, bound goal: the demand region is acyclic, magic prunes.
        assert_eq!(
            resolve_auto_strategy(&tc(), &chain_database("e", 8), &bound_goal(8)),
            Strategy::Magic
        );
        // Cycle data, same program and adornments: the demand region
        // saturates, indexed wins.
        assert_eq!(
            resolve_auto_strategy(&tc(), &cycle_database("e", 8), &bound_goal(0)),
            Strategy::Indexed
        );
        // All-free goal: nothing to pass sideways.
        assert_eq!(
            resolve_auto_strategy(&tc(), &chain_database("e", 8), &Atom::app("p", ["X", "Y"])),
            Strategy::Indexed
        );
        // Magic-inapplicable input (IDB facts in the EDB): indexed.
        let mut db = chain(4);
        db.insert(Fact::app("p", ["c0", "c9"]));
        assert_eq!(
            resolve_auto_strategy(&tc(), &db, &bound_goal(4)),
            Strategy::Indexed
        );
    }

    #[test]
    fn auto_evaluation_matches_its_resolved_strategy_probe_for_probe() {
        use crate::generate::{chain_database, cycle_database};
        let chain_db = chain_database("e", 16);
        let goal = bound_goal(16);
        let auto = evaluate_goal_with(&tc(), &chain_db, &goal, with_strategy(Strategy::Auto));
        let magic = evaluate_goal_with(&tc(), &chain_db, &goal, with_strategy(Strategy::Magic));
        assert_eq!(auto.database, magic.database);
        assert_eq!(auto.stats, magic.stats, "auto must *be* magic here");

        let cycle_db = cycle_database("e", 16);
        let cyc_goal = bound_goal(0);
        let auto = evaluate_goal_with(&tc(), &cycle_db, &cyc_goal, with_strategy(Strategy::Auto));
        let indexed = evaluate_goal_with(
            &tc(),
            &cycle_db,
            &cyc_goal,
            with_strategy(Strategy::Indexed),
        );
        assert_eq!(auto.database, indexed.database);
        assert_eq!(auto.stats, indexed.stats, "auto must *be* indexed here");
    }

    #[test]
    fn free_variable_patterns_restrict_to_matching_tuples() {
        let db = chain(4);
        // p(c1, Y): all nodes reachable from c1.
        let goal = Atom::new(
            Pred::new("p"),
            vec![
                Term::Const(Constant::from_usize(1)),
                Term::Var(crate::term::Var::new("Y")),
            ],
        );
        for strategy in Strategy::ALL {
            let r = evaluate_goal_with(&tc(), &db, &goal, with_strategy(strategy));
            assert_eq!(
                r.relation(Pred::new("p")).len(),
                3,
                "{}: c2, c3, c4 reachable from c1",
                strategy.name()
            );
        }
    }

    #[test]
    fn sinks_observe_without_perturbing_the_run() {
        use metrics::{MetricsLevel, NoMetrics, RecordingSink};
        let db = chain(8);
        let goal = bound_goal(8);
        let plain = evaluate_goal_with(&tc(), &db, &goal, with_strategy(Strategy::Auto));
        let off = evaluate_goal_with_sink(
            &tc(),
            &db,
            &goal,
            with_strategy(Strategy::Auto),
            &mut NoMetrics,
        );
        assert_eq!(plain.stats, off.stats);

        let mut sink = RecordingSink::new(MetricsLevel::Trace, usize::MAX);
        let traced =
            evaluate_goal_with_sink(&tc(), &db, &goal, with_strategy(Strategy::Auto), &mut sink);
        assert_eq!(plain.stats, traced.stats, "tracing must be observational");
        assert_eq!(plain.database, traced.database);
        let kinds: BTreeSet<&str> = sink.events.iter().map(|e| e.kind).collect();
        for kind in ["strategy", "iteration", "delta", "join", "eval"] {
            assert!(kinds.contains(kind), "missing event kind {kind}");
        }
        let strategy = sink.events.iter().find(|e| e.kind == "strategy").unwrap();
        assert_eq!(strategy.text("requested"), Some("auto"));
        assert_eq!(strategy.text("resolved"), Some("magic"));
        assert_eq!(
            strategy.text("reason"),
            Some("bound goal with an acyclic demand region; magic prunes")
        );
        let summary = sink.events.iter().find(|e| e.kind == "eval").unwrap();
        assert_eq!(summary.num("probes"), Some(plain.stats.probes as u64));
    }

    #[test]
    fn counters_level_skips_per_iteration_detail() {
        use metrics::{MetricsLevel, RecordingSink};
        let mut sink = RecordingSink::new(MetricsLevel::Counters, usize::MAX);
        evaluate_goal_with_sink(
            &tc(),
            &chain(4),
            &bound_goal(4),
            with_strategy(Strategy::Auto),
            &mut sink,
        );
        let kinds: BTreeSet<&str> = sink.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains("strategy"));
        assert!(kinds.contains("eval"));
        assert!(!kinds.contains("iteration"));
        assert!(!kinds.contains("join"));
    }
}
