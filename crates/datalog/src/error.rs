//! Error types for parsing and validation.

use std::fmt;

/// An error produced while tokenizing or parsing Datalog text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Construct a parse error.
    pub fn new(line: usize, message: String) -> Self {
        ParseError { line, message }
    }

    /// Stable machine-readable code, for transports (the server wire
    /// protocol) that must not couple to `Display` text.
    pub fn code(&self) -> &'static str {
        "parse_error"
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A problem found while validating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// The offending predicate name.
        pred: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A head variable does not occur in the rule body (unsafe rule).
    UnsafeRule {
        /// Rendering of the offending rule.
        rule: String,
        /// The unbound head variable.
        variable: String,
    },
    /// The designated goal predicate does not occur in the program.
    MissingGoal {
        /// The goal predicate name.
        goal: String,
    },
    /// A nonrecursive program was required but the program is recursive.
    ExpectedNonrecursive,
    /// A rule head uses an EDB predicate of a paired program — the two
    /// programs being compared must agree on which predicates are EDB.
    EdbRedefined {
        /// The offending predicate name.
        pred: String,
    },
}

impl ValidationError {
    /// Stable machine-readable code identifying the variant, for transports
    /// (the server wire protocol) that must not couple to `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            ValidationError::ArityMismatch { .. } => "arity_mismatch",
            ValidationError::UnsafeRule { .. } => "unsafe_rule",
            ValidationError::MissingGoal { .. } => "missing_goal",
            ValidationError::ExpectedNonrecursive => "expected_nonrecursive",
            ValidationError::EdbRedefined { .. } => "edb_redefined",
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate `{pred}` used with arity {found} but previously with arity {expected}"
            ),
            ValidationError::UnsafeRule { rule, variable } => write!(
                f,
                "unsafe rule `{rule}`: head variable `{variable}` does not occur in the body"
            ),
            ValidationError::MissingGoal { goal } => {
                write!(f, "goal predicate `{goal}` does not occur in the program")
            }
            ValidationError::ExpectedNonrecursive => {
                write!(
                    f,
                    "expected a nonrecursive program but the dependency graph has a cycle"
                )
            }
            ValidationError::EdbRedefined { pred } => {
                write!(
                    f,
                    "predicate `{pred}` is extensional but is defined by a rule head"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_line() {
        let e = ParseError::new(7, "boom".into());
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn validation_error_display_is_informative() {
        let e = ValidationError::ArityMismatch {
            pred: "e".into(),
            expected: 2,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains("e") && s.contains('2') && s.contains('3'));

        let u = ValidationError::UnsafeRule {
            rule: "p(X) :- q(Y).".into(),
            variable: "X".into(),
        };
        assert!(u.to_string().contains("unsafe"));
    }
}
