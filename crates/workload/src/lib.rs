//! Seeded wire-level traffic generator for the serve layer.
//!
//! Every serve-layer number the benches gate comes from uniform synthetic
//! batches, but real deployments hit the decision service with **skewed,
//! bursty, multi-tenant** mixes.  This crate turns a seed plus a
//! [`WorkloadSpec`] into a deterministic stream of [`TimedRequest`]s —
//! framed request lines with arrival offsets — ready to drive a server or
//! router directly, to feed the serve bench's `skewed` phase, or to be
//! written to a capture file for `server::replay`.
//!
//! Three axes of realism, each independently configurable:
//!
//! * **Zipfian program popularity** — programs are drawn from a catalog of
//!   `programs` structurally distinct parametric families; rank `r` is
//!   chosen with probability proportional to `1/(r+1)^s` (inverse-CDF over
//!   the truncated harmonic weights; `s = 0` degenerates to uniform).
//!   Distinct catalog entries use distinct EDB predicate names, so a
//!   `ProgramKey`-sharding router spreads them while a hot rank hammers one
//!   shard — exactly the skew the memo layers are supposed to absorb.
//! * **Per-tenant interleaving** — each request carries a tenant drawn
//!   uniformly, embedded in its unique id (`t3-00017`), so a capture can be
//!   sliced per tenant and an exactly-once check can treat ids as a
//!   ground-truth multiset.
//! * **Burst/lull pacing** — arrival offsets advance by `gap_micros` within
//!   a burst and by `lull_micros` between bursts, modelling the thundering
//!   herds that uniform pacing never produces.
//!
//! Determinism is a hard requirement: the same seed and spec produce the
//! same byte-for-byte request lines on every platform, because the replay
//! soak asserts byte-identical response multisets across runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use server::json::Value;
use server::protocol;

/// How arrival offsets advance along the stream.
#[derive(Clone, Copy, Debug)]
pub struct Pacing {
    /// Requests per burst; offsets within a burst advance by
    /// [`Pacing::gap_micros`].
    pub burst_len: usize,
    /// Inter-arrival gap inside a burst, in microseconds.
    pub gap_micros: u64,
    /// Extra pause inserted between bursts, in microseconds.
    pub lull_micros: u64,
}

impl Default for Pacing {
    fn default() -> Self {
        Pacing {
            burst_len: 32,
            gap_micros: 50,
            lull_micros: 20_000,
        }
    }
}

/// Relative weights of the decision verbs in the generated stream.
///
/// Only pure decision verbs appear: they are the memoisable surface whose
/// byte-identical replays the determinism soak depends on (admin and
/// observability verbs would perturb the very state being measured).
#[derive(Clone, Copy, Debug)]
pub struct VerbMix {
    /// Weight of `containment` requests.
    pub containment: u32,
    /// Weight of `equivalence` requests.
    pub equivalence: u32,
    /// Weight of `bounded` requests.
    pub bounded: u32,
    /// Weight of `optimize` requests.
    pub optimize: u32,
    /// Weight of `minimize` requests.
    pub minimize: u32,
    /// Weight of `rewrite` requests.
    pub rewrite: u32,
}

impl Default for VerbMix {
    fn default() -> Self {
        VerbMix {
            containment: 4,
            equivalence: 2,
            bounded: 1,
            optimize: 1,
            minimize: 1,
            rewrite: 1,
        }
    }
}

impl VerbMix {
    fn weights(&self) -> [(Verb, u32); 6] {
        [
            (Verb::Containment, self.containment),
            (Verb::Equivalence, self.equivalence),
            (Verb::Bounded, self.bounded),
            (Verb::Optimize, self.optimize),
            (Verb::Minimize, self.minimize),
            (Verb::Rewrite, self.rewrite),
        ]
    }

    fn total(&self) -> u32 {
        self.weights().iter().map(|(_, w)| w).sum()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verb {
    Containment,
    Equivalence,
    Bounded,
    Optimize,
    Minimize,
    Rewrite,
}

/// The full description of a workload; [`generate`] turns it plus a seed
/// into the concrete stream.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of tenants interleaved in the stream.
    pub tenants: usize,
    /// Catalog size: number of structurally distinct program families.
    pub programs: usize,
    /// Zipf exponent `s` for program popularity; `0.0` is uniform, and the
    /// classic web-caching skew is around `1.0`.
    pub zipf_s: f64,
    /// Relative verb weights.
    pub verb_mix: VerbMix,
    /// Burst/lull arrival pacing.
    pub pacing: Pacing,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            requests: 256,
            tenants: 4,
            programs: 16,
            zipf_s: 1.0,
            verb_mix: VerbMix::default(),
            pacing: Pacing::default(),
        }
    }
}

/// One generated request: a framed wire line plus its arrival offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedRequest {
    /// Arrival time relative to the start of the stream, in microseconds.
    pub offset_micros: u64,
    /// The tenant this request belongs to (also embedded in the id).
    pub tenant: usize,
    /// The rendered single-line JSON request, unique `id` included, no
    /// trailing newline.
    pub line: String,
}

/// The parametric program family at catalog rank `k`.
///
/// Every family uses EDB names suffixed with `k`, so distinct ranks are
/// structurally distinct programs (distinct `ProgramKey`s for the router)
/// while repeats of one rank are byte-identical (memoisable).
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// The recursive transitive-closure program over `e{k}`.
    pub recursive: String,
    /// A recursive-but-bounded program over `e{k}`/`t{k}` (the paper's
    /// trendy-buys shape), used by `rewrite` so the rewrite succeeds.
    pub bounded: String,
    /// A conjunctive query contained in the recursive program's goal.
    pub query: String,
    /// A redundant UCQ over `e{k}` that `minimize` can shrink.
    pub redundant_ucq: String,
    /// A nonrecursive candidate for `equivalence` probes.
    pub candidate: String,
}

/// Build the catalog entry for rank `k`.
pub fn catalog_entry(k: usize) -> CatalogEntry {
    CatalogEntry {
        recursive: format!("p(X, Y) :- e{k}(X, Y).\np(X, Y) :- e{k}(X, Z), p(Z, Y)."),
        bounded: format!("b(X, Y) :- e{k}(X, Y).\nb(X, Y) :- t{k}(X), b(Z, Y)."),
        query: format!("q(X, Y) :- e{k}(X, Z), e{k}(Z, Y)."),
        redundant_ucq: format!("q(X, Y) :- e{k}(X, Y), e{k}(X, Z).\nq(A, B) :- e{k}(A, B)."),
        candidate: format!("p(X, Y) :- e{k}(X, Y).\np(X, Y) :- e{k}(X, Z), e{k}(Z, Y)."),
    }
}

/// Inverse-CDF sampler over truncated zipf weights `1/(r+1)^s`.
///
/// Precomputes the cumulative weights once; each draw is a uniform sample
/// plus a linear scan (catalogs are small — tens of entries — so a binary
/// search would buy nothing).
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf catalog must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut total = 0.0;
        let cumulative = (0..n)
            .map(|r| {
                total += 1.0 / ((r + 1) as f64).powf(s);
                total
            })
            .collect();
        ZipfSampler { cumulative }
    }

    /// Draw one rank (0-based; rank 0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        // `random_range` over a huge integer span gives a deterministic,
        // platform-stable uniform value; map it into [0, total).
        let u = rng.random_range(0..u64::MAX) as f64 / u64::MAX as f64 * total;
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

fn sample_verb(mix: &VerbMix, rng: &mut StdRng) -> Verb {
    let total = mix.total().max(1);
    let mut pick = rng.random_range(0..total);
    for (verb, weight) in mix.weights() {
        if pick < weight {
            return verb;
        }
        pick -= weight;
    }
    Verb::Containment
}

/// Attach a unique id as the first field of a request object.
fn with_id(mut request: Value, id: &str) -> Value {
    if let Value::Obj(fields) = &mut request {
        fields.insert(0, ("id".to_string(), Value::str(id)));
    }
    request
}

/// Generate the full stream for `spec`, deterministically from `seed`.
///
/// Requests are returned in arrival order with non-decreasing offsets; ids
/// are unique across the stream (`t{tenant}-{index:05}`), so the stream
/// doubles as a ground-truth multiset for exactly-once delivery checks.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> Vec<TimedRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(spec.programs.max(1), spec.zipf_s);
    let tenants = spec.tenants.max(1);
    let mut offset: u64 = 0;
    let mut out = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        if i > 0 {
            let burst_len = spec.pacing.burst_len.max(1);
            offset += if i % burst_len == 0 {
                spec.pacing.lull_micros
            } else {
                spec.pacing.gap_micros
            };
        }
        let rank = zipf.sample(&mut rng);
        let tenant = rng.random_range(0..tenants);
        let verb = sample_verb(&spec.verb_mix, &mut rng);
        let entry = catalog_entry(rank);
        let id = format!("t{tenant}-{i:05}");
        let request = match verb {
            Verb::Containment => protocol::containment_request(&entry.recursive, "p", &entry.query),
            Verb::Equivalence => {
                protocol::equivalence_request(&entry.recursive, "p", &entry.candidate)
            }
            Verb::Bounded => protocol::bounded_request(&entry.bounded, "b", 4),
            Verb::Optimize => protocol::optimize_request(&entry.bounded, "b"),
            Verb::Minimize => protocol::minimize_request(&entry.redundant_ucq),
            Verb::Rewrite => protocol::rewrite_request(&entry.bounded, "b", 4),
        };
        out.push(TimedRequest {
            offset_micros: offset,
            tenant,
            line: with_id(request, &id).render(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use server::json;
    use server::protocol::parse_request;

    #[test]
    fn generation_is_deterministic_across_runs() {
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&spec, 7), generate(&spec, 7));
        assert_ne!(generate(&spec, 7), generate(&spec, 8));
    }

    #[test]
    fn every_line_parses_as_a_valid_decision_request_with_a_unique_id() {
        let spec = WorkloadSpec {
            requests: 400,
            ..WorkloadSpec::default()
        };
        let stream = generate(&spec, 11);
        let mut ids = std::collections::HashSet::new();
        for req in &stream {
            let value = json::parse(&req.line).expect("generated line is valid JSON");
            let parsed = parse_request(&value, false).expect("generated line parses");
            assert!(
                matches!(
                    parsed.command.verb(),
                    "containment" | "equivalence" | "bounded" | "optimize" | "minimize" | "rewrite"
                ),
                "only decision verbs appear: {}",
                parsed.command.verb()
            );
            let id = value.get("id").unwrap().as_str().unwrap().to_string();
            assert!(id.starts_with(&format!("t{}-", req.tenant)));
            assert!(ids.insert(id), "ids must be unique across the stream");
        }
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn zipf_skews_the_popular_rank_above_uniform() {
        let n = 16;
        let zipf = ZipfSampler::new(n, 1.1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; n];
        let draws = 4000;
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let uniform_share = draws / n;
        assert!(
            counts[0] > 2 * uniform_share,
            "rank 0 must be hot: {} vs uniform {}",
            counts[0],
            uniform_share
        );
        // With s = 0 the sampler degenerates to uniform: no rank may hog.
        let uniform = ZipfSampler::new(n, 0.0);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[uniform.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c < 2 * uniform_share));
    }

    #[test]
    fn pacing_inserts_lulls_between_bursts() {
        let spec = WorkloadSpec {
            requests: 96,
            pacing: Pacing {
                burst_len: 32,
                gap_micros: 10,
                lull_micros: 5_000,
            },
            ..WorkloadSpec::default()
        };
        let stream = generate(&spec, 1);
        for pair in stream.windows(2) {
            let delta = pair[1].offset_micros - pair[0].offset_micros;
            assert!(delta == 10 || delta == 5_000, "delta {delta}");
        }
        let lulls = stream
            .windows(2)
            .filter(|p| p[1].offset_micros - p[0].offset_micros == 5_000)
            .count();
        assert_eq!(lulls, 2, "96 requests in bursts of 32 have two lulls");
    }

    #[test]
    fn distinct_ranks_use_distinct_edb_names() {
        let a = catalog_entry(0);
        let b = catalog_entry(1);
        assert!(a.recursive.contains("e0("));
        assert!(b.recursive.contains("e1("));
        assert_ne!(a.recursive, b.recursive);
    }
}
