//! First-order properties of the expansions of a program (Section 3).
//!
//! Section 3 observes that properties of a Datalog program can be phrased as
//! first-order properties of the 2-sorted structures associated with its
//! unfolding expansion trees, and that such properties are decidable by
//! Courcelle's theorem — with non-elementary cost.  The worked example is
//! *strong non-redundancy*: no unfolding expansion tree contains two
//! distinct occurrences of the same EDB atom.
//!
//! This module provides a bounded verifier for that property (checking all
//! unfolding trees up to a height cutoff) plus an exact decision for
//! nonrecursive programs, whose unfolding trees are finitely many.  The
//! bounded verifier is what the paper's example needs in practice: a
//! redundancy, if any, already shows up at small depth for the program
//! families studied here.

use datalog::atom::Pred;
use datalog::program::Program;

use crate::expansion::{expansion_query, unfolding_trees};

/// The outcome of a strong non-redundancy check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NonRedundancy {
    /// No duplicate EDB atom in any unfolding tree up to the inspected
    /// height.
    HoldsUpTo {
        /// The height up to which the property was verified.
        height: usize,
        /// Whether the check was exhaustive (true for nonrecursive
        /// programs, whose unfolding trees all fit under the cutoff).
        exhaustive: bool,
    },
    /// A violating unfolding tree was found.
    Violated {
        /// The height of the violating tree.
        height: usize,
        /// The duplicated EDB atom (after unfolding).
        duplicate: String,
    },
}

impl NonRedundancy {
    /// Did the property hold for everything inspected?
    pub fn holds(&self) -> bool {
        matches!(self, NonRedundancy::HoldsUpTo { .. })
    }
}

/// Check strong non-redundancy for all unfolding expansion trees of height
/// at most `max_height`.
pub fn strongly_nonredundant_up_to(
    program: &Program,
    goal: Pred,
    max_height: usize,
) -> NonRedundancy {
    // For a nonrecursive program the unfolding-tree height is bounded by the
    // number of IDB predicates, so a sufficiently large cutoff is exhaustive.
    let exhaustive_height = program.idb_predicates().len();
    let exhaustive = program.is_nonrecursive() && max_height >= exhaustive_height;

    for tree in unfolding_trees(program, goal, max_height) {
        let query = expansion_query(program, &tree);
        let mut seen = std::collections::BTreeSet::new();
        for atom in &query.body {
            if !seen.insert(atom.clone()) {
                return NonRedundancy::Violated {
                    height: tree.height(),
                    duplicate: atom.to_string(),
                };
            }
        }
    }
    NonRedundancy::HoldsUpTo {
        height: max_height,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::generate::transitive_closure;
    use datalog::parser::parse_program;

    #[test]
    fn transitive_closure_is_strongly_nonredundant_up_to_depth_five() {
        let result = strongly_nonredundant_up_to(&transitive_closure("e", "e"), Pred::new("p"), 5);
        assert!(result.holds());
        assert_eq!(
            result,
            NonRedundancy::HoldsUpTo {
                height: 5,
                exhaustive: false
            }
        );
    }

    #[test]
    fn duplicated_edb_atom_is_detected() {
        // The second rule repeats e(X, Y) twice after unfolding q.
        let program = parse_program(
            "p(X, Y) :- e(X, Y), q(X, Y).\n\
             q(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let result = strongly_nonredundant_up_to(&program, Pred::new("p"), 3);
        match result {
            NonRedundancy::Violated { duplicate, height } => {
                assert_eq!(duplicate, "e(X, Y)");
                assert_eq!(height, 2);
            }
            other => panic!("expected a violation, got {other:?}"),
        }
    }

    #[test]
    fn nonrecursive_check_is_reported_exhaustive() {
        let program = parse_program(
            "p(X, Y) :- q(X, Z), q(Z, Y).\n\
             q(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let result = strongly_nonredundant_up_to(&program, Pred::new("p"), 4);
        assert_eq!(
            result,
            NonRedundancy::HoldsUpTo {
                height: 4,
                exhaustive: true
            }
        );
    }
}
