//! Unfolding programs into unions of conjunctive queries.
//!
//! * A **nonrecursive** program has finitely many expansions, so it can be
//!   rewritten as a UCQ (Section 2.1).  This rewriting may blow up
//!   exponentially — Example 6.1 produces a single disjunct of size `2^n`,
//!   Example 6.6 produces `2^n` disjuncts of linear size — and that blowup
//!   is exactly the gap between the 2EXPTIME bound of Theorem 5.12 and the
//!   3EXPTIME bound of Theorem 6.4.  [`unfold_nonrecursive`] performs the
//!   rewriting and reports size statistics.
//! * For a **recursive** program the set of expansions is infinite;
//!   [`expansions_up_to_depth`] enumerates the expansions of unfolding
//!   trees of bounded height, which is what the boundedness tools
//!   ([`crate::bounded`]) and the differential tests use.

use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::{Atom, Pred};
use datalog::program::Program;
use datalog::rule::Rule;

use crate::unify::Unifier;

/// Errors reported by the unfolder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnfoldError {
    /// The program is recursive, so it has no finite unfolding.
    Recursive,
    /// The goal predicate has no rules in the program.
    UnknownGoal(Pred),
    /// The expansion limit was exceeded.
    TooLarge {
        /// The configured limit on generated expansions per predicate
        /// (counted before deduplication, so it bounds work, not just the
        /// surviving disjunct count).
        limit: usize,
    },
}

impl UnfoldError {
    /// Stable machine-readable code identifying the variant, for transports
    /// (the server wire protocol) that must not couple to `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            UnfoldError::Recursive => "recursive_candidate",
            UnfoldError::UnknownGoal(_) => "unknown_goal",
            UnfoldError::TooLarge { .. } => "unfolding_too_large",
        }
    }
}

impl std::fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnfoldError::Recursive => write!(f, "cannot finitely unfold a recursive program"),
            UnfoldError::UnknownGoal(p) => write!(f, "goal predicate `{p}` has no rules"),
            UnfoldError::TooLarge { limit } => {
                write!(f, "unfolding exceeded the limit of {limit} disjuncts")
            }
        }
    }
}

impl std::error::Error for UnfoldError {}

/// Size statistics of an unfolding, recorded for EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnfoldStats {
    /// Number of disjuncts produced.
    pub disjuncts: usize,
    /// Total number of term positions over all disjuncts.
    pub total_size: usize,
    /// Size of the largest disjunct.
    pub max_disjunct_size: usize,
}

impl UnfoldStats {
    /// Compute statistics for a UCQ.
    pub fn of(ucq: &Ucq) -> Self {
        UnfoldStats {
            disjuncts: ucq.len(),
            total_size: ucq.size(),
            max_disjunct_size: ucq.max_disjunct_size(),
        }
    }
}

/// Rewrite a nonrecursive program as a union of conjunctive queries for the
/// given goal predicate.
///
/// `limit` bounds the number of disjuncts (per predicate) to keep runaway
/// inputs from exhausting memory; pass `usize::MAX` for no limit.
pub fn unfold_nonrecursive(
    program: &Program,
    goal: Pred,
    limit: usize,
) -> Result<Ucq, UnfoldError> {
    if !program.is_nonrecursive() {
        return Err(UnfoldError::Recursive);
    }
    if !program.is_idb(goal) {
        return Err(UnfoldError::UnknownGoal(goal));
    }
    let mut memo: std::collections::BTreeMap<Pred, Vec<ConjunctiveQuery>> =
        std::collections::BTreeMap::new();
    // Process IDB predicates bottom-up along the dependency order.
    let order = program.dependency_graph().topological_order();
    for pred in order {
        if !program.is_idb(pred) {
            continue;
        }
        let expansions = expand_predicate(program, pred, &|p| memo.get(&p).cloned(), limit)?;
        memo.insert(pred, expansions);
    }
    Ok(Ucq::new(memo.remove(&goal).unwrap_or_default()))
}

/// The expansions of unfolding trees of height at most `depth` for the goal
/// predicate.  Works for recursive programs; the result under-approximates
/// `Q_Π` and converges to it as `depth` grows.
pub fn expansions_up_to_depth(program: &Program, goal: Pred, depth: usize) -> Ucq {
    expansions_up_to_depth_limited(program, goal, depth, usize::MAX)
        .expect("unbounded depth-limited expansion cannot fail")
}

/// As [`expansions_up_to_depth`], but aborting with
/// [`UnfoldError::TooLarge`] once any predicate accumulates more than
/// `limit` expansions — the expansion count grows exponentially in `depth`
/// for nonlinear programs, and long-running callers (the server's
/// `bounded` verb) must be able to bound that phase.
pub fn expansions_up_to_depth_limited(
    program: &Program,
    goal: Pred,
    depth: usize,
    limit: usize,
) -> Result<Ucq, UnfoldError> {
    // memo[d][pred] = expansions of height ≤ d.
    let idb = program.idb_predicates();
    let mut previous: std::collections::BTreeMap<Pred, Vec<ConjunctiveQuery>> =
        idb.iter().map(|&p| (p, Vec::new())).collect();
    for _ in 0..depth {
        let snapshot = previous.clone();
        let mut next = std::collections::BTreeMap::new();
        for &pred in &idb {
            let expansions =
                expand_predicate(program, pred, &|p| snapshot.get(&p).cloned(), limit)?;
            next.insert(pred, expansions);
        }
        previous = next;
    }
    let disjuncts = previous.remove(&goal).unwrap_or_default();
    Ok(Ucq::new(disjuncts).dedup())
}

/// One round of unfolding for a predicate: take every rule for `pred` and
/// replace every IDB body atom by one of the expansions provided by
/// `lookup` (renamed apart and unified with the atom).
fn expand_predicate(
    program: &Program,
    pred: Pred,
    lookup: &dyn Fn(Pred) -> Option<Vec<ConjunctiveQuery>>,
    limit: usize,
) -> Result<Vec<ConjunctiveQuery>, UnfoldError> {
    let idb = program.idb_predicates();
    let mut out: Vec<ConjunctiveQuery> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    // The budget counts *generated* expansions, not distinct ones: for
    // nonlinear rules exponentially many combinations can deduplicate to a
    // handful of disjuncts, and a budget on the deduplicated count would
    // bound memory but not work.  Distinct ≤ generated, so this is the
    // stricter (and the only time-bounding) reading of `limit`.
    let mut generated = 0usize;
    for (_, rule) in program.rules_for(pred) {
        // Rename the rule apart so that expansions of different rules (and
        // recursive re-entries) never clash.
        let (rule, _) = rule.freshen("u");
        expand_rule(&rule, &idb, lookup, &mut |cq| {
            generated += 1;
            if generated > limit {
                return Err(UnfoldError::TooLarge { limit });
            }
            let canon = cq.canonicalize_names();
            if seen.insert(canon) {
                out.push(cq);
            }
            Ok(())
        })?;
    }
    Ok(out)
}

/// Enumerate the expansions of a single (already renamed-apart) rule.
fn expand_rule(
    rule: &Rule,
    idb: &std::collections::BTreeSet<Pred>,
    lookup: &dyn Fn(Pred) -> Option<Vec<ConjunctiveQuery>>,
    emit: &mut dyn FnMut(ConjunctiveQuery) -> Result<(), UnfoldError>,
) -> Result<(), UnfoldError> {
    // Depth-first over the IDB body atoms, accumulating the unifier and the
    // EDB atoms gathered so far.  The per-rule fixed inputs travel in a
    // context struct; only the traversal state is passed per call.
    struct ExpandCtx<'a> {
        head: &'a Atom,
        body: &'a [Atom],
        idb: &'a std::collections::BTreeSet<Pred>,
        lookup: &'a dyn Fn(Pred) -> Option<Vec<ConjunctiveQuery>>,
    }

    fn go(
        ctx: &ExpandCtx<'_>,
        position: usize,
        unifier: &Unifier,
        collected: &[Atom],
        emit: &mut dyn FnMut(ConjunctiveQuery) -> Result<(), UnfoldError>,
    ) -> Result<(), UnfoldError> {
        if position == ctx.body.len() {
            let head = unifier.apply_atom(ctx.head);
            let body = collected.iter().map(|a| unifier.apply_atom(a)).collect();
            return emit(ConjunctiveQuery::new(head, body));
        }
        let atom = &ctx.body[position];
        if !ctx.idb.contains(&atom.pred) {
            let mut collected = collected.to_vec();
            collected.push(atom.clone());
            return go(ctx, position + 1, unifier, &collected, emit);
        }
        let Some(expansions) = (ctx.lookup)(atom.pred) else {
            return Ok(()); // no expansions yet (depth exhausted) — prune
        };
        for expansion in expansions {
            let fresh = expansion.rename_apart("w");
            let mut extended = unifier.clone();
            if !extended.unify_atoms(&fresh.head, atom) {
                continue;
            }
            let mut collected = collected.to_vec();
            collected.extend(fresh.body.iter().cloned());
            go(ctx, position + 1, &extended, &collected, emit)?;
        }
        Ok(())
    }

    let ctx = ExpandCtx {
        head: &rule.head,
        body: &rule.body,
        idb,
        lookup,
    };
    go(&ctx, 0, &Unifier::new(), &[], emit)
}

/// Unfold and report statistics in one call (the shape used by the benches).
pub fn unfold_with_stats(
    program: &Program,
    goal: Pred,
    limit: usize,
) -> Result<(Ucq, UnfoldStats), UnfoldError> {
    let ucq = unfold_nonrecursive(program, goal, limit)?;
    let stats = UnfoldStats::of(&ucq);
    Ok((ucq, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::containment::ucq_equivalent;
    use cq::eval::evaluate_ucq;
    use datalog::eval::evaluate;
    use datalog::generate::{chain_database, dist_program, transitive_closure, word_program};

    #[test]
    fn example_6_1_dist_unfolds_to_a_single_exponential_disjunct() {
        for n in 1..=5 {
            let program = dist_program(n);
            let goal = Pred::new(&format!("dist{n}"));
            let (ucq, stats) = unfold_with_stats(&program, goal, usize::MAX).unwrap();
            assert_eq!(stats.disjuncts, 1, "dist_{n} has a single expansion");
            // The single disjunct is a path of length 2^n: 2^n body atoms.
            assert_eq!(ucq.disjuncts[0].body.len(), 1 << n);
            assert_eq!(stats.max_disjunct_size, 2 + 2 * (1 << n));
        }
    }

    #[test]
    fn example_6_6_word_unfolds_to_exponentially_many_linear_disjuncts() {
        for n in 2..=6 {
            let program = word_program(n);
            let goal = Pred::new(&format!("word{n}"));
            let (ucq, stats) = unfold_with_stats(&program, goal, usize::MAX).unwrap();
            assert_eq!(stats.disjuncts, 1 << n, "2^{n} label patterns");
            // Every disjunct has n edge atoms + n label atoms.
            assert!(ucq.disjuncts.iter().all(|d| d.body.len() == 2 * n));
            assert_eq!(stats.max_disjunct_size, 2 + 2 * n + n);
        }
    }

    #[test]
    fn recursive_programs_are_rejected() {
        let tc = transitive_closure("e", "e");
        assert_eq!(
            unfold_nonrecursive(&tc, Pred::new("p"), usize::MAX).unwrap_err(),
            UnfoldError::Recursive
        );
    }

    #[test]
    fn unknown_goal_is_rejected() {
        let p = dist_program(2);
        assert!(matches!(
            unfold_nonrecursive(&p, Pred::new("nope"), usize::MAX),
            Err(UnfoldError::UnknownGoal(_))
        ));
    }

    #[test]
    fn disjunct_limit_is_enforced() {
        let program = word_program(6);
        let goal = Pred::new("word6");
        assert!(matches!(
            unfold_nonrecursive(&program, goal, 10),
            Err(UnfoldError::TooLarge { limit: 10 })
        ));
    }

    #[test]
    fn unfolding_agrees_with_evaluation_on_sample_databases() {
        // For a nonrecursive program, the UCQ and the program must give the
        // same answers on every database; check on chains.
        let program = dist_program(2);
        let goal = Pred::new("dist2");
        let ucq = unfold_nonrecursive(&program, goal, usize::MAX).unwrap();
        for n in 0..6 {
            let db = chain_database("e", n);
            let via_program: std::collections::BTreeSet<_> = evaluate(&program, &db)
                .relation(goal)
                .iter()
                .cloned()
                .collect();
            let via_ucq = evaluate_ucq(&ucq, &db);
            assert_eq!(via_program, via_ucq, "chain length {n}");
        }
    }

    #[test]
    fn bounded_expansions_of_transitive_closure_are_the_path_queries() {
        let tc = transitive_closure("e", "e");
        let goal = Pred::new("p");
        // Depth 1: only the exit rule fires → the single-edge query.
        let d1 = expansions_up_to_depth(&tc, goal, 1);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1.disjuncts[0].body.len(), 1);
        // Depth 3: paths of length 1, 2, 3.
        let d3 = expansions_up_to_depth(&tc, goal, 3);
        assert_eq!(d3.len(), 3);
        let mut lengths: Vec<usize> = d3.disjuncts.iter().map(|d| d.body.len()).collect();
        lengths.sort();
        assert_eq!(lengths, vec![1, 2, 3]);
        // The depth-3 expansions are equivalent to the bounded-path UCQ.
        let reference = cq::generate::bounded_path_ucq_binary("e", 3);
        assert!(ucq_equivalent(&d3, &reference));
    }

    #[test]
    fn bounded_expansions_grow_monotonically() {
        let tc = transitive_closure("e", "e");
        let goal = Pred::new("p");
        let d2 = expansions_up_to_depth(&tc, goal, 2);
        let d4 = expansions_up_to_depth(&tc, goal, 4);
        assert!(cq::containment::ucq_contained_in(&d2, &d4));
        assert!(!cq::containment::ucq_contained_in(&d4, &d2));
    }

    #[test]
    fn repeated_head_variables_unfold_via_unification() {
        // r(X) :- q(X, X).  q(A, B) :- e(A, B).  Unfolding must unify A = B.
        let program = datalog::parser::parse_program(
            "r(X) :- q(X, X).\n\
             q(A, B) :- e(A, B).",
        )
        .unwrap();
        let ucq = unfold_nonrecursive(&program, Pred::new("r"), usize::MAX).unwrap();
        assert_eq!(ucq.len(), 1);
        let d = &ucq.disjuncts[0];
        assert_eq!(d.body.len(), 1);
        // The edge atom must have both positions equal to the head variable.
        assert_eq!(d.body[0].terms[0], d.body[0].terms[1]);
        assert_eq!(d.body[0].terms[0], d.head.terms[0]);
    }

    #[test]
    fn diamond_dependencies_multiply_disjuncts() {
        // top :- left, right; left and right each have 2 rules → 4 disjuncts.
        let program = datalog::parser::parse_program(
            "top(X) :- left(X), right(X).\n\
             left(X) :- a(X).\n\
             left(X) :- b(X).\n\
             right(X) :- c(X).\n\
             right(X) :- d(X).",
        )
        .unwrap();
        let ucq = unfold_nonrecursive(&program, Pred::new("top"), usize::MAX).unwrap();
        assert_eq!(ucq.len(), 4);
        assert!(ucq.disjuncts.iter().all(|d| d.body.len() == 2));
    }
}
