//! Bounded-unfolding tools.
//!
//! The paper's motivating optimisation (Example 1.1) is recursion
//! elimination: replace a recursive program by a nonrecursive one when the
//! two are equivalent.  Whether *some* equivalent nonrecursive program
//! exists (boundedness) is undecidable \[GMSV93], but two practically useful
//! variants are decidable with the machinery of this crate:
//!
//! * Is Π equivalent to its own depth-`k` unfolding, for a given `k`?
//!   ([`bounded_at_depth`])  If yes, the depth-`k` unfolding is an
//!   equivalent union of conjunctive queries, i.e. an explicit nonrecursive
//!   form of Π.
//! * Find the least such `k` below a cutoff, if any ([`find_bound`]).

use cq::Ucq;
use datalog::atom::Pred;
use datalog::program::Program;

use crate::containment::{datalog_contained_in_ucq_with, DecisionError, DecisionOptions};
use crate::unfold::expansions_up_to_depth_limited;

/// The outcome of a boundedness-at-k check.
#[derive(Debug)]
pub struct BoundedResult {
    /// Is Π equivalent to its depth-`k` unfolding?
    pub bounded: bool,
    /// The depth-`k` unfolding that was compared against.
    pub unfolding: Ucq,
}

/// Is the program equivalent to its depth-`k` unfolding?
///
/// The unfolding is contained in the program by construction, so only the
/// direction Π ⊆ unfolding needs to be decided (Theorem 5.12 machinery).
pub fn bounded_at_depth(
    program: &Program,
    goal: Pred,
    depth: usize,
) -> Result<BoundedResult, DecisionError> {
    bounded_at_depth_with(program, goal, depth, DecisionOptions::default())
}

/// As [`bounded_at_depth`], with explicit decision options (the default
/// options share the process-wide [`crate::cache::DecisionCache`], so
/// probing the same program repeatedly — e.g. from [`find_bound`] and then
/// from `optimize::eliminate_recursion` — re-decides nothing).
pub fn bounded_at_depth_with(
    program: &Program,
    goal: Pred,
    depth: usize,
    options: DecisionOptions,
) -> Result<BoundedResult, DecisionError> {
    // The only error the depth-limited expansion can produce is the
    // `max_unfold` budget being exhausted — report it as the same resource
    // exhaustion the pair budget reports.
    let unfolding = expansions_up_to_depth_limited(program, goal, depth, options.max_unfold)
        .map_err(|_| DecisionError::ResourceLimit)?;
    let result = datalog_contained_in_ucq_with(program, goal, &unfolding, options)?;
    Ok(BoundedResult {
        bounded: result.contained,
        unfolding,
    })
}

/// Find the least depth `k ≤ max_depth` at which the program is equivalent
/// to its unfolding, if any.
pub fn find_bound(
    program: &Program,
    goal: Pred,
    max_depth: usize,
) -> Result<Option<(usize, Ucq)>, DecisionError> {
    find_bound_with(program, goal, max_depth, DecisionOptions::default())
}

/// As [`find_bound`], with explicit decision options.
pub fn find_bound_with(
    program: &Program,
    goal: Pred,
    max_depth: usize,
    options: DecisionOptions,
) -> Result<Option<(usize, Ucq)>, DecisionError> {
    for depth in 1..=max_depth {
        let result = bounded_at_depth_with(program, goal, depth, options)?;
        if result.bounded {
            return Ok(Some((depth, result.unfolding)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::parser::parse_program;

    #[test]
    fn example_1_1_pi1_is_bounded_at_depth_two() {
        let program = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), buys(Z, Y).",
        )
        .unwrap();
        let result = bounded_at_depth(&program, Pred::new("buys"), 2).unwrap();
        assert!(result.bounded, "Π₁ collapses at depth 2 (Example 1.1)");
        assert_eq!(result.unfolding.len(), 2);
        // Depth 1 is not enough: only the likes-rule expansion is present.
        assert!(
            !bounded_at_depth(&program, Pred::new("buys"), 1)
                .unwrap()
                .bounded
        );
        // find_bound reports 2 as the least bound.
        let (k, ucq) = find_bound(&program, Pred::new("buys"), 4).unwrap().unwrap();
        assert_eq!(k, 2);
        assert_eq!(ucq.len(), 2);
    }

    #[test]
    fn example_1_1_pi2_is_not_bounded_at_small_depths() {
        let program = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), buys(Z, Y).",
        )
        .unwrap();
        assert!(find_bound(&program, Pred::new("buys"), 3)
            .unwrap()
            .is_none());
    }

    #[test]
    fn transitive_closure_is_unbounded_at_small_depths() {
        let tc = parse_program(
            "p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        assert!(find_bound(&tc, Pred::new("p"), 3).unwrap().is_none());
    }

    #[test]
    fn trivially_nonrecursive_program_is_bounded_at_depth_one() {
        let p = parse_program("r(X, Y) :- e(X, Y).").unwrap();
        let result = bounded_at_depth(&p, Pred::new("r"), 1).unwrap();
        assert!(result.bounded);
    }

    #[test]
    fn exploding_expansions_hit_the_unfold_budget() {
        // 16 recursive subgoals and two base rules: the depth-2 expansion
        // set is 2^16 combinations.  With `max_unfold` set, the budget
        // aborts the unfold phase (as `ResourceLimit`) before any of it is
        // materialised — the bound the server's `bounded` verb relies on.
        let chain = (0..16)
            .map(|i| format!("p(A{i}, A{})", i + 1))
            .collect::<Vec<_>>()
            .join(", ");
        let program = parse_program(&format!(
            "p(A0, A16) :- {chain}.\np(X, Y) :- e(X, Y).\np(X, Y) :- f(X, Y)."
        ))
        .unwrap();
        let options = DecisionOptions {
            max_unfold: 1_000,
            ..DecisionOptions::default()
        };
        let err = bounded_at_depth_with(&program, Pred::new("p"), 2, options).unwrap_err();
        assert_eq!(err, DecisionError::ResourceLimit);
        assert_eq!(err.code(), "resource_limit");
    }
}
