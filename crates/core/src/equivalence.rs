//! Containment and equivalence of recursive and nonrecursive programs —
//! Theorems 3.2, 6.4, 6.5 and 6.7.
//!
//! * `Π ⊆ Π'` (Π recursive, Π' nonrecursive): rewrite Π' into a union of
//!   conjunctive queries (possibly exponentially larger — that is the extra
//!   exponent of Theorem 6.4) and decide containment in the union with the
//!   automata machinery of [`crate::containment`].
//! * `Π' ⊆ Π`: the canonical-database method of [`crate::cq_in_datalog`],
//!   applied to each disjunct of Π'’s unfolding.
//! * Equivalence (Theorem 6.5 / Corollary 3.3) is the conjunction of both
//!   directions, and the result records which direction failed together
//!   with a concrete counterexample database.

use cq::Ucq;
use datalog::atom::Pred;
use datalog::program::Program;

use crate::containment::{
    datalog_contained_in_ucq_with, ContainmentResult, Counterexample, DecisionError,
    DecisionOptions,
};
use crate::cq_in_datalog::cq_contained_in_datalog_with;
use crate::unfold::{unfold_nonrecursive, UnfoldError, UnfoldStats};
use datalog::eval::Strategy;

/// Errors reported by the recursive-vs-nonrecursive procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceError {
    /// The comparison program could not be unfolded.
    Unfold(UnfoldError),
    /// The containment decision failed.
    Decision(DecisionError),
}

impl EquivalenceError {
    /// Stable machine-readable code identifying the underlying failure, for
    /// transports (the server wire protocol) that must not couple to
    /// `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            EquivalenceError::Unfold(e) => e.code(),
            EquivalenceError::Decision(e) => e.code(),
        }
    }
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::Unfold(e) => write!(f, "{e}"),
            EquivalenceError::Decision(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EquivalenceError {}

impl From<UnfoldError> for EquivalenceError {
    fn from(e: UnfoldError) -> Self {
        EquivalenceError::Unfold(e)
    }
}

impl From<DecisionError> for EquivalenceError {
    fn from(e: DecisionError) -> Self {
        EquivalenceError::Decision(e)
    }
}

/// The outcome of deciding `Π ⊆ Π'` for nonrecursive Π'.
#[derive(Debug)]
pub struct NonrecursiveContainment {
    /// The containment verdict and instrumentation.
    pub result: ContainmentResult,
    /// The unfolding of Π' used for the decision, with its size statistics
    /// (the Theorem 6.4 blowup measurement).
    pub unfolding: Ucq,
    /// Statistics of the unfolding.
    pub unfold_stats: UnfoldStats,
}

/// Decide `Π(goal) ⊆ Π'(goal)` where Π' is nonrecursive (Theorem 6.4).
pub fn datalog_contained_in_nonrecursive(
    program: &Program,
    goal: Pred,
    nonrecursive: &Program,
) -> Result<NonrecursiveContainment, EquivalenceError> {
    datalog_contained_in_nonrecursive_with(program, goal, nonrecursive, DecisionOptions::default())
}

/// As [`datalog_contained_in_nonrecursive`], with explicit decision options.
pub fn datalog_contained_in_nonrecursive_with(
    program: &Program,
    goal: Pred,
    nonrecursive: &Program,
    options: DecisionOptions,
) -> Result<NonrecursiveContainment, EquivalenceError> {
    let unfolding = unfold_nonrecursive(nonrecursive, goal, options.max_unfold)?;
    let unfold_stats = UnfoldStats::of(&unfolding);
    let result = datalog_contained_in_ucq_with(program, goal, &unfolding, options)?;
    Ok(NonrecursiveContainment {
        result,
        unfolding,
        unfold_stats,
    })
}

/// Decide `Π'(goal) ⊆ Π(goal)` where Π' is nonrecursive: unfold Π' and check
/// every disjunct by the canonical-database method.  Returns the index of a
/// violating disjunct on failure.  Decisions are memoised in the shared
/// [`crate::cache::DecisionCache`]; see
/// [`nonrecursive_contained_in_datalog_with`] for the uncached oracle.
pub fn nonrecursive_contained_in_datalog(
    nonrecursive: &Program,
    goal: Pred,
    program: &Program,
) -> Result<Result<(), usize>, EquivalenceError> {
    nonrecursive_contained_in_datalog_with(
        nonrecursive,
        goal,
        program,
        true,
        usize::MAX,
        DecisionOptions::default().strategy,
    )
}

/// As [`nonrecursive_contained_in_datalog`], with the per-disjunct
/// canonical-database checks optionally bypassing the shared cache, the
/// unfolding bounded by `max_unfold` disjuncts (`usize::MAX`: unbounded),
/// and the evaluation strategy pinned (verdicts are strategy-independent;
/// [`Strategy::Magic`] evaluates each check goal-directed).
pub fn nonrecursive_contained_in_datalog_with(
    nonrecursive: &Program,
    goal: Pred,
    program: &Program,
    use_cache: bool,
    max_unfold: usize,
    strategy: Strategy,
) -> Result<Result<(), usize>, EquivalenceError> {
    let unfolding = unfold_nonrecursive(nonrecursive, goal, max_unfold)?;
    let program_key = use_cache.then(|| crate::cache::ProgramKey::of(program));
    for (index, disjunct) in unfolding.disjuncts.iter().enumerate() {
        let contained = match &program_key {
            Some(key) => crate::cq_in_datalog::cq_contained_in_datalog_keyed(
                disjunct, program, key, goal, strategy,
            ),
            None => cq_contained_in_datalog_with(disjunct, program, goal, strategy),
        };
        if !contained {
            return Ok(Err(index));
        }
    }
    Ok(Ok(()))
}

/// Which direction of an equivalence check failed.
#[derive(Debug)]
pub enum EquivalenceVerdict {
    /// The two programs are equivalent.
    Equivalent,
    /// The recursive program derives facts the nonrecursive one does not;
    /// the counterexample exhibits such a database and tuple.
    RecursiveExceeds(Box<Counterexample>),
    /// The nonrecursive program derives facts the recursive one does not;
    /// the payload is the index of a violating disjunct of its unfolding.
    NonrecursiveExceeds(usize),
}

impl EquivalenceVerdict {
    /// Are the programs equivalent?
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceVerdict::Equivalent)
    }
}

/// The outcome of an equivalence check (Theorem 6.5).
#[derive(Debug)]
pub struct EquivalenceResult {
    /// The verdict, with a witness when the programs differ.
    pub verdict: EquivalenceVerdict,
    /// Instrumentation of the Π ⊆ Π' direction (when it was run).
    pub containment: Option<NonrecursiveContainment>,
}

/// Decide whether a (recursive) program and a nonrecursive program are
/// equivalent on the given goal predicate (Theorem 6.5, Corollary 3.3).
pub fn equivalent_to_nonrecursive(
    program: &Program,
    goal: Pred,
    nonrecursive: &Program,
) -> Result<EquivalenceResult, EquivalenceError> {
    equivalent_to_nonrecursive_with(program, goal, nonrecursive, DecisionOptions::default())
}

/// As [`equivalent_to_nonrecursive`], with explicit decision options.
pub fn equivalent_to_nonrecursive_with(
    program: &Program,
    goal: Pred,
    nonrecursive: &Program,
    options: DecisionOptions,
) -> Result<EquivalenceResult, EquivalenceError> {
    // Cheap direction first: Π' ⊆ Π by canonical databases.
    if let Err(index) = nonrecursive_contained_in_datalog_with(
        nonrecursive,
        goal,
        program,
        options.use_cache,
        options.max_unfold,
        options.strategy,
    )? {
        return Ok(EquivalenceResult {
            verdict: EquivalenceVerdict::NonrecursiveExceeds(index),
            containment: None,
        });
    }
    // Expensive direction: Π ⊆ Π' via the automata construction.
    let containment = datalog_contained_in_nonrecursive_with(program, goal, nonrecursive, options)?;
    let verdict = if containment.result.contained {
        EquivalenceVerdict::Equivalent
    } else {
        let counterexample = containment
            .result
            .counterexample
            .clone()
            .expect("non-containment always carries a counterexample");
        EquivalenceVerdict::RecursiveExceeds(Box::new(counterexample))
    };
    Ok(EquivalenceResult {
        verdict,
        containment: Some(containment),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::evaluate;
    use datalog::parser::parse_program;

    fn buys1() -> Program {
        parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), buys(Z, Y).",
        )
        .unwrap()
    }

    fn buys1_nonrec() -> Program {
        parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), likes(Z, Y).",
        )
        .unwrap()
    }

    fn buys2() -> Program {
        parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), buys(Z, Y).",
        )
        .unwrap()
    }

    fn buys2_nonrec() -> Program {
        parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), likes(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn example_1_1_pi1_is_equivalent_to_its_nonrecursive_form() {
        let result =
            equivalent_to_nonrecursive(&buys1(), Pred::new("buys"), &buys1_nonrec()).unwrap();
        assert!(
            result.verdict.is_equivalent(),
            "Example 1.1: Π₁ ≡ nonrecursive form"
        );
    }

    #[test]
    fn example_1_1_pi2_is_not_equivalent_and_the_witness_checks_out() {
        let result =
            equivalent_to_nonrecursive(&buys2(), Pred::new("buys"), &buys2_nonrec()).unwrap();
        match result.verdict {
            EquivalenceVerdict::RecursiveExceeds(cex) => {
                // Verify the counterexample by brute force.
                let rec = evaluate(&buys2(), &cex.database);
                let nonrec = evaluate(&buys2_nonrec(), &cex.database);
                assert!(rec.relation(Pred::new("buys")).contains(&cex.goal_tuple));
                assert!(!nonrec.relation(Pred::new("buys")).contains(&cex.goal_tuple));
                // The minimal witness is a knows-chain of length 2.
                assert_eq!(cex.expansion.body.len(), 3);
            }
            other => panic!("expected RecursiveExceeds, got {other:?}"),
        }
    }

    #[test]
    fn nonrecursive_exceeding_direction_is_detected() {
        // Π misses the 2-step rule that Π' has.
        let program = parse_program("r(X, Y) :- e(X, Y).").unwrap();
        let nonrec = parse_program(
            "r(X, Y) :- e(X, Y).\n\
             r(X, Y) :- e(X, Z), e(Z, Y).",
        )
        .unwrap();
        let result = equivalent_to_nonrecursive(&program, Pred::new("r"), &nonrec).unwrap();
        assert!(matches!(
            result.verdict,
            EquivalenceVerdict::NonrecursiveExceeds(_)
        ));
    }

    #[test]
    fn transitive_closure_is_not_equivalent_to_any_bounded_unfolding() {
        // TC vs. the dist-style "paths of length ≤ 2" nonrecursive program.
        let tc = parse_program(
            "p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let bounded = parse_program(
            "p(X, Y) :- e(X, Y).\n\
             p(X, Y) :- e(X, Z), e(Z, Y).",
        )
        .unwrap();
        let result = equivalent_to_nonrecursive(&tc, Pred::new("p"), &bounded).unwrap();
        match result.verdict {
            EquivalenceVerdict::RecursiveExceeds(cex) => {
                assert_eq!(cex.expansion.body.len(), 3, "shortest gap is the 3-path");
            }
            other => panic!("expected RecursiveExceeds, got {other:?}"),
        }
    }

    #[test]
    fn containment_direction_reports_unfold_stats() {
        let r = datalog_contained_in_nonrecursive(&buys1(), Pred::new("buys"), &buys1_nonrec())
            .unwrap();
        assert!(r.result.contained);
        assert_eq!(r.unfold_stats.disjuncts, 2);
        assert_eq!(r.unfolding.len(), 2);
    }

    #[test]
    fn recursive_comparison_program_is_rejected() {
        let err =
            datalog_contained_in_nonrecursive(&buys1(), Pred::new("buys"), &buys2()).unwrap_err();
        assert!(matches!(
            err,
            EquivalenceError::Unfold(UnfoldError::Recursive)
        ));
    }

    #[test]
    fn identical_nonrecursive_programs_are_equivalent() {
        // Both inputs nonrecursive: the procedure still applies.
        let p = buys1_nonrec();
        let result = equivalent_to_nonrecursive(&p, Pred::new("buys"), &p).unwrap();
        assert!(result.verdict.is_equivalent());
    }
}
