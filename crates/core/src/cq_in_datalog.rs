//! Containment of (unions of) conjunctive queries in a Datalog program.
//!
//! This is the *other* direction of the equivalence problem — the one the
//! paper's introduction notes was already known to be decidable (it is
//! EXPTIME-complete in general and NP-complete for bounded arity
//! [CK86, CLM81, Sa88b]).  The classical algorithm is the canonical-database
//! (frozen query) method: `θ ⊆ Π(Q)` iff evaluating Π on the canonical
//! database of θ derives the frozen head tuple of θ.

use cq::canonical::canonical_database;
use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::Pred;
use datalog::eval::{evaluate_with, EvalOptions, Strategy};
use datalog::program::Program;

/// Is the conjunctive query contained in the Datalog program's goal
/// predicate?  Evaluates with the default (indexed) strategy; see
/// [`cq_contained_in_datalog_with`] to pin a strategy for differential
/// comparison.
pub fn cq_contained_in_datalog(theta: &ConjunctiveQuery, program: &Program, goal: Pred) -> bool {
    cq_contained_in_datalog_with(theta, program, goal, EvalOptions::default().strategy)
}

/// [`cq_contained_in_datalog`] with an explicit evaluation strategy.  The
/// decision is strategy-independent (all strategies compute the same
/// fixpoint — see `tests/strategy_differential.rs`); the knob exists so the
/// decision procedures can be cross-checked against the naive reference
/// engine.
pub fn cq_contained_in_datalog_with(
    theta: &ConjunctiveQuery,
    program: &Program,
    goal: Pred,
    strategy: Strategy,
) -> bool {
    let frozen = canonical_database(theta);
    let result = evaluate_with(
        program,
        &frozen.database,
        EvalOptions {
            strategy,
            ..EvalOptions::default()
        },
    );
    result.relation(goal).contains(&frozen.head_tuple)
}

/// As [`cq_contained_in_datalog`], memoised in the shared
/// [`crate::cache::DecisionCache`] under a precomputed program key (so
/// callers checking many disjuncts against the same program intern the
/// program once).
pub fn cq_contained_in_datalog_keyed(
    theta: &ConjunctiveQuery,
    program: &Program,
    program_key: &crate::cache::ProgramKey,
    goal: Pred,
) -> bool {
    let cache = crate::cache::DecisionCache::global();
    let key = cq::CqKey::of(theta);
    let (verdict, _) = cache.cq_in_datalog_cached(program_key, goal, &key, || {
        // Containment is invariant under canonicalisation; freeze the
        // canonical form carried by the key.
        cq_contained_in_datalog(key.as_query(), program, goal)
    });
    verdict
}

/// Is every disjunct of the union contained in the program (i.e. is the
/// union contained in the program)?
pub fn ucq_contained_in_datalog(ucq: &Ucq, program: &Program, goal: Pred) -> bool {
    ucq.disjuncts
        .iter()
        .all(|theta| cq_contained_in_datalog(theta, program, goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::generate::transitive_closure;
    use datalog::parser::parse_program;

    fn tc() -> datalog::Program {
        transitive_closure("e", "e")
    }

    #[test]
    fn path_queries_are_contained_in_transitive_closure() {
        for n in 1..=5 {
            let q = cq::generate::path_query("e", n);
            assert!(
                cq_contained_in_datalog(&q, &tc(), Pred::new("p")),
                "path of length {n} must be contained in TC"
            );
        }
    }

    #[test]
    fn wrong_predicate_queries_are_not_contained() {
        let q = ConjunctiveQuery::parse("q(X, Y) :- f(X, Y).").unwrap();
        assert!(!cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn disconnected_query_is_not_contained() {
        // Two separate edges do not witness a path between the endpoints.
        let q = ConjunctiveQuery::parse("q(X, Y) :- e(X, A), e(B, Y).").unwrap();
        assert!(!cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn ucq_containment_requires_every_disjunct() {
        let ok = Ucq::parse("q(X, Y) :- e(X, Y).\nq(X, Y) :- e(X, Z), e(Z, Y).").unwrap();
        let mixed = Ucq::parse("q(X, Y) :- e(X, Y).\nq(X, Y) :- f(X, Y).").unwrap();
        assert!(ucq_contained_in_datalog(&ok, &tc(), Pred::new("p")));
        assert!(!ucq_contained_in_datalog(&mixed, &tc(), Pred::new("p")));
    }

    #[test]
    fn decision_is_strategy_independent() {
        let queries = [
            cq::generate::path_query("e", 3),
            ConjunctiveQuery::parse("q(X, Y) :- e(X, A), e(B, Y).").unwrap(),
            ConjunctiveQuery::parse("q(X, X) :- e(X, X).").unwrap(),
        ];
        for q in &queries {
            let reference = cq_contained_in_datalog_with(q, &tc(), Pred::new("p"), Strategy::Naive);
            for strategy in [Strategy::SemiNaive, Strategy::Indexed] {
                assert_eq!(
                    reference,
                    cq_contained_in_datalog_with(q, &tc(), Pred::new("p"), strategy),
                    "{q:?} under {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_head_variables_freeze_correctly() {
        // q(X, X) :- e(X, X): a self-loop, which TC derives as p(a, a).
        let q = ConjunctiveQuery::parse("q(X, X) :- e(X, X).").unwrap();
        assert!(cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn containment_respects_nonrecursive_comparison_programs() {
        // Θ = single edge is contained in the nonrecursive "edge or 2-path"
        // program.
        let program = parse_program(
            "r(X, Y) :- e(X, Y).\n\
             r(X, Y) :- e(X, Z), e(Z, Y).",
        )
        .unwrap();
        let q = ConjunctiveQuery::parse("q(X, Y) :- e(X, Y).").unwrap();
        assert!(cq_contained_in_datalog(&q, &program, Pred::new("r")));
        let three = cq::generate::path_query("e", 3);
        assert!(!cq_contained_in_datalog(&three, &program, Pred::new("r")));
    }
}
