//! Containment of (unions of) conjunctive queries in a Datalog program.
//!
//! This is the *other* direction of the equivalence problem — the one the
//! paper's introduction notes was already known to be decidable (it is
//! EXPTIME-complete in general and NP-complete for bounded arity
//! [CK86, CLM81, Sa88b]).  The classical algorithm is the canonical-database
//! (frozen query) method: `θ ⊆ Π(Q)` iff evaluating Π on the canonical
//! database of θ derives the frozen head tuple of θ.
//!
//! The frozen head tuple is all constants, so the goal pattern handed to the
//! evaluator is fully bound — the best case for goal-directed evaluation.
//! Every check goes through [`datalog::eval::evaluate_goal_with`], which
//! under [`Strategy::Magic`] adorns the program on that pattern and runs the
//! magic-set rewrite so the fixpoint derives only goal-relevant facts.  The
//! verdict is strategy-independent; each call is tallied per strategy (see
//! [`strategy_decision_counts`]) so serve-side adoption is observable.

use std::sync::atomic::{AtomicU64, Ordering};

use cq::canonical::canonical_database;
use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::{Atom, Pred};
use datalog::eval::{evaluate_goal_with, EvalOptions, Strategy};
use datalog::program::Program;
use datalog::term::Term;

/// Process-wide tallies of canonical-database decisions served per strategy.
static NAIVE_DECISIONS: AtomicU64 = AtomicU64::new(0);
static SEMI_NAIVE_DECISIONS: AtomicU64 = AtomicU64::new(0);
static INDEXED_DECISIONS: AtomicU64 = AtomicU64::new(0);
static MAGIC_DECISIONS: AtomicU64 = AtomicU64::new(0);
static AUTO_MAGIC_DECISIONS: AtomicU64 = AtomicU64::new(0);
static AUTO_INDEXED_DECISIONS: AtomicU64 = AtomicU64::new(0);

/// How many canonical-database decisions each evaluation strategy has served
/// in this process (cache misses only — a cached verdict re-used by
/// [`cq_contained_in_datalog_keyed`] runs no evaluation and counts nothing).
///
/// [`Strategy::Auto`] decisions are tallied separately from explicit
/// magic/indexed requests, split by what the planner resolved them to, so a
/// routed deployment can see both that the heuristic is in use and which
/// way it is deciding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrategyCounts {
    /// Decisions evaluated with [`Strategy::Naive`].
    pub naive: u64,
    /// Decisions evaluated with [`Strategy::SemiNaive`].
    pub semi_naive: u64,
    /// Decisions evaluated with an explicitly requested
    /// [`Strategy::Indexed`].
    pub indexed: u64,
    /// Decisions evaluated with an explicitly requested
    /// [`Strategy::Magic`].
    pub magic: u64,
    /// [`Strategy::Auto`] decisions the planner resolved to magic.
    pub auto_magic: u64,
    /// [`Strategy::Auto`] decisions the planner resolved to indexed.
    pub auto_indexed: u64,
}

impl StrategyCounts {
    /// Total decisions across all strategies.
    pub fn total(&self) -> u64 {
        self.naive
            + self.semi_naive
            + self.indexed
            + self.magic
            + self.auto_magic
            + self.auto_indexed
    }

    /// Component-wise difference `self - earlier`, for reporting the
    /// decisions attributable to a bounded span of work (an optimisation
    /// pass, a server request).  Saturates at zero.
    pub fn since(&self, earlier: &StrategyCounts) -> StrategyCounts {
        StrategyCounts {
            naive: self.naive.saturating_sub(earlier.naive),
            semi_naive: self.semi_naive.saturating_sub(earlier.semi_naive),
            indexed: self.indexed.saturating_sub(earlier.indexed),
            magic: self.magic.saturating_sub(earlier.magic),
            auto_magic: self.auto_magic.saturating_sub(earlier.auto_magic),
            auto_indexed: self.auto_indexed.saturating_sub(earlier.auto_indexed),
        }
    }
}

/// Snapshot the per-strategy decision counters.
pub fn strategy_decision_counts() -> StrategyCounts {
    StrategyCounts {
        naive: NAIVE_DECISIONS.load(Ordering::Relaxed),
        semi_naive: SEMI_NAIVE_DECISIONS.load(Ordering::Relaxed),
        indexed: INDEXED_DECISIONS.load(Ordering::Relaxed),
        magic: MAGIC_DECISIONS.load(Ordering::Relaxed),
        auto_magic: AUTO_MAGIC_DECISIONS.load(Ordering::Relaxed),
        auto_indexed: AUTO_INDEXED_DECISIONS.load(Ordering::Relaxed),
    }
}

/// Tally one decision under the strategy the caller *requested*; auto
/// decisions carry the strategy the planner resolved them to.
fn record_decision(requested: Strategy, resolved: Strategy) {
    let counter = match (requested, resolved) {
        (Strategy::Auto, Strategy::Magic) => &AUTO_MAGIC_DECISIONS,
        (Strategy::Auto, _) => &AUTO_INDEXED_DECISIONS,
        (Strategy::Naive, _) => &NAIVE_DECISIONS,
        (Strategy::SemiNaive, _) => &SEMI_NAIVE_DECISIONS,
        (Strategy::Indexed, _) => &INDEXED_DECISIONS,
        (Strategy::Magic, _) => &MAGIC_DECISIONS,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Is the conjunctive query contained in the Datalog program's goal
/// predicate?  Evaluates with the default (indexed) strategy; see
/// [`cq_contained_in_datalog_with`] to pin a strategy for differential
/// comparison or to opt into goal-directed (magic-set) evaluation.
pub fn cq_contained_in_datalog(theta: &ConjunctiveQuery, program: &Program, goal: Pred) -> bool {
    cq_contained_in_datalog_with(theta, program, goal, EvalOptions::default().strategy)
}

/// [`cq_contained_in_datalog`] with an explicit evaluation strategy.  The
/// decision is strategy-independent (all strategies compute the same goal
/// relation — see `tests/strategy_differential.rs`); the knob exists so the
/// decision procedures can be cross-checked against the naive reference
/// engine and so callers can opt into [`Strategy::Magic`], which seeds the
/// magic predicates from the (fully bound) frozen head tuple, or
/// [`Strategy::Auto`], which lets the planner pick magic exactly when the
/// adorned goal can prune the fixpoint on this frozen database.
pub fn cq_contained_in_datalog_with(
    theta: &ConjunctiveQuery,
    program: &Program,
    goal: Pred,
    strategy: Strategy,
) -> bool {
    let frozen = canonical_database(theta);
    let pattern = Atom::new(
        goal,
        frozen.head_tuple.iter().map(|&c| Term::Const(c)).collect(),
    );
    // Resolve the planner's choice here rather than inside the evaluator so
    // the tally can distinguish auto-resolved-to-magic from
    // auto-resolved-to-indexed.
    let resolved = match strategy {
        Strategy::Auto => datalog::eval::resolve_auto_strategy(program, &frozen.database, &pattern),
        explicit => explicit,
    };
    let result = evaluate_goal_with(
        program,
        &frozen.database,
        &pattern,
        EvalOptions {
            strategy: resolved,
            ..EvalOptions::default()
        },
    );
    record_decision(strategy, resolved);
    result.relation(goal).contains(&frozen.head_tuple)
}

/// As [`cq_contained_in_datalog`], memoised in the shared
/// [`crate::cache::DecisionCache`] under a precomputed program key (so
/// callers checking many disjuncts against the same program intern the
/// program once).  The strategy only governs how a cache miss is computed —
/// verdicts are strategy-independent, so it is not part of the cache key and
/// hits are shared across strategies.
pub fn cq_contained_in_datalog_keyed(
    theta: &ConjunctiveQuery,
    program: &Program,
    program_key: &crate::cache::ProgramKey,
    goal: Pred,
    strategy: Strategy,
) -> bool {
    let cache = crate::cache::DecisionCache::global();
    let key = cq::CqKey::of(theta);
    let (verdict, _) = cache.cq_in_datalog_cached(program_key, goal, &key, || {
        // Containment is invariant under canonicalisation; freeze the
        // canonical form carried by the key.
        cq_contained_in_datalog_with(key.as_query(), program, goal, strategy)
    });
    verdict
}

/// Is every disjunct of the union contained in the program (i.e. is the
/// union contained in the program)?
pub fn ucq_contained_in_datalog(ucq: &Ucq, program: &Program, goal: Pred) -> bool {
    ucq_contained_in_datalog_with(ucq, program, goal, EvalOptions::default().strategy)
}

/// As [`ucq_contained_in_datalog`], with an explicit evaluation strategy for
/// the per-disjunct canonical-database checks.
pub fn ucq_contained_in_datalog_with(
    ucq: &Ucq,
    program: &Program,
    goal: Pred,
    strategy: Strategy,
) -> bool {
    ucq.disjuncts
        .iter()
        .all(|theta| cq_contained_in_datalog_with(theta, program, goal, strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::generate::transitive_closure;
    use datalog::parser::parse_program;

    fn tc() -> datalog::Program {
        transitive_closure("e", "e")
    }

    #[test]
    fn path_queries_are_contained_in_transitive_closure() {
        for n in 1..=5 {
            let q = cq::generate::path_query("e", n);
            assert!(
                cq_contained_in_datalog(&q, &tc(), Pred::new("p")),
                "path of length {n} must be contained in TC"
            );
        }
    }

    #[test]
    fn wrong_predicate_queries_are_not_contained() {
        let q = ConjunctiveQuery::parse("q(X, Y) :- f(X, Y).").unwrap();
        assert!(!cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn disconnected_query_is_not_contained() {
        // Two separate edges do not witness a path between the endpoints.
        let q = ConjunctiveQuery::parse("q(X, Y) :- e(X, A), e(B, Y).").unwrap();
        assert!(!cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn ucq_containment_requires_every_disjunct() {
        let ok = Ucq::parse("q(X, Y) :- e(X, Y).\nq(X, Y) :- e(X, Z), e(Z, Y).").unwrap();
        let mixed = Ucq::parse("q(X, Y) :- e(X, Y).\nq(X, Y) :- f(X, Y).").unwrap();
        assert!(ucq_contained_in_datalog(&ok, &tc(), Pred::new("p")));
        assert!(!ucq_contained_in_datalog(&mixed, &tc(), Pred::new("p")));
    }

    #[test]
    fn decision_is_strategy_independent() {
        let queries = [
            cq::generate::path_query("e", 3),
            ConjunctiveQuery::parse("q(X, Y) :- e(X, A), e(B, Y).").unwrap(),
            ConjunctiveQuery::parse("q(X, X) :- e(X, X).").unwrap(),
        ];
        for q in &queries {
            let reference = cq_contained_in_datalog_with(q, &tc(), Pred::new("p"), Strategy::Naive);
            for strategy in [
                Strategy::SemiNaive,
                Strategy::Indexed,
                Strategy::Magic,
                Strategy::Auto,
            ] {
                assert_eq!(
                    reference,
                    cq_contained_in_datalog_with(q, &tc(), Pred::new("p"), strategy),
                    "{q:?} under {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_head_variables_freeze_correctly() {
        // q(X, X) :- e(X, X): a self-loop, which TC derives as p(a, a).
        let q = ConjunctiveQuery::parse("q(X, X) :- e(X, X).").unwrap();
        assert!(cq_contained_in_datalog(&q, &tc(), Pred::new("p")));
    }

    #[test]
    fn containment_respects_nonrecursive_comparison_programs() {
        // Θ = single edge is contained in the nonrecursive "edge or 2-path"
        // program.
        let program = parse_program(
            "r(X, Y) :- e(X, Y).\n\
             r(X, Y) :- e(X, Z), e(Z, Y).",
        )
        .unwrap();
        let q = ConjunctiveQuery::parse("q(X, Y) :- e(X, Y).").unwrap();
        assert!(cq_contained_in_datalog(&q, &program, Pred::new("r")));
        let three = cq::generate::path_query("e", 3);
        assert!(!cq_contained_in_datalog(&three, &program, Pred::new("r")));
    }

    #[test]
    fn strategy_counters_tally_decisions() {
        let q = cq::generate::path_query("e", 2);
        let before = strategy_decision_counts();
        assert!(cq_contained_in_datalog_with(
            &q,
            &tc(),
            Pred::new("p"),
            Strategy::Magic
        ));
        assert!(cq_contained_in_datalog_with(
            &q,
            &tc(),
            Pred::new("p"),
            Strategy::Indexed
        ));
        let delta = strategy_decision_counts().since(&before);
        // Other tests run concurrently, so counters may overshoot; they must
        // at least account for the two decisions above.
        assert!(delta.magic >= 1, "magic decisions uncounted: {delta:?}");
        assert!(delta.indexed >= 1, "indexed decisions uncounted: {delta:?}");
        assert!(delta.total() >= 2);
    }

    #[test]
    fn auto_decisions_are_tallied_by_what_the_planner_resolved() {
        // The frozen head tuple of a path query is fully bound and the
        // canonical database of a path is acyclic, so on TC the planner
        // resolves auto to magic — and the tally must land in the auto
        // bucket, not in the explicit-magic one attributed to callers who
        // pinned the strategy themselves.
        let q = cq::generate::path_query("e", 2);
        let before = strategy_decision_counts();
        assert!(cq_contained_in_datalog_with(
            &q,
            &tc(),
            Pred::new("p"),
            Strategy::Auto
        ));
        let delta = strategy_decision_counts().since(&before);
        assert!(
            delta.auto_magic >= 1,
            "auto-resolved-to-magic decision uncounted: {delta:?}"
        );

        // A self-loop query freezes to a cyclic canonical database: demand
        // saturates, the planner resolves auto to indexed.
        let looped = ConjunctiveQuery::parse("q(X, X) :- e(X, X).").unwrap();
        let before = strategy_decision_counts();
        assert!(cq_contained_in_datalog_with(
            &looped,
            &tc(),
            Pred::new("p"),
            Strategy::Auto
        ));
        let delta = strategy_decision_counts().since(&before);
        assert!(
            delta.auto_indexed >= 1,
            "auto-resolved-to-indexed decision uncounted: {delta:?}"
        );
    }
}
