//! Containment of a Datalog program in a union of conjunctive queries —
//! Theorems 5.11 and 5.12.
//!
//! `Π(Q) ⊆ Θ` iff `T(A_ptrees(Q,Π)) ⊆ ∪ᵢ T(A_θᵢ(Q,Π))`.  The right-hand side
//! is a single tree automaton (disjoint union of the per-disjunct automata),
//! so the decision reduces to tree-automata containment.  For programs whose
//! rules have at most one IDB subgoal — which includes the paper's
//! linear-program examples — proof trees are paths, and the same automata
//! reinterpreted over words let us use the cheaper word-automata containment
//! (the EXPSPACE track of Theorem 5.12).
//!
//! When containment fails the witness proof tree is converted into a
//! counterexample: the expansion it represents, and the canonical database
//! of that expansion on which `Q_Π` derives a tuple that Θ does not.

use std::time::Instant;

pub use automata::tree::containment::Schedule;

use automata::tree::containment::{contained_in_with_sink, ContainmentOptions, TreeContainment};
use automata::tree::ops::union as tree_union;
use automata::tree::TreeAutomaton;
use automata::word::containment::{contained_in as word_contained_in, WordContainment};
use automata::word::Nfa;
use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::Pred;
use datalog::database::Database;
use datalog::eval::Strategy;
use datalog::program::Program;
use datalog::term::Constant;
use metrics::{Event, FieldValue, GlobalSink, MetricsLevel, MetricsSink, RecordingSink};

use crate::cq_automaton::CqAutomaton;
use crate::labels::ProofLabel;
use crate::proof_tree::{ProofTree, ProofTreeAnalysis};
use crate::ptrees_automaton::{AutomatonStats, PtreesAutomaton};

/// Which automata model carried the decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionPath {
    /// General programs: tree-automata containment (2EXPTIME track).
    TreeAutomata,
    /// Programs whose rules have at most one IDB subgoal: word-automata
    /// containment (EXPSPACE track).
    WordAutomata,
}

/// Instrumentation collected during a containment decision; the benches and
/// EXPERIMENTS.md report these.
#[derive(Clone, Debug)]
pub struct ContainmentStats {
    /// Which decision path was taken.
    pub path: DecisionPath,
    /// Size of the proof-tree automaton.
    pub ptrees: AutomatonStats,
    /// Combined size of the per-disjunct query automata.
    pub queries: AutomatonStats,
    /// Number of product states explored by the containment check.
    pub explored: usize,
    /// Antichain entries retired because a later, smaller subset dominated
    /// them (tree path only; the word path reports zero).
    pub pairs_dominated: usize,
    /// Scheduled candidates discarded at pop time because a dominating pair
    /// was admitted first (tree path only; the word path reports zero).
    pub pops_skipped_dead: usize,
    /// High-water mark of the scheduler frontier (tree path only; the word
    /// path reports zero).
    pub max_frontier: usize,
    /// Wall-clock time of the whole decision, in microseconds.
    pub micros: u128,
}

/// A concrete refutation of `Π ⊆ Θ`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The offending proof tree.
    pub proof_tree: ProofTree,
    /// The expansion (conjunctive query) the proof tree represents.
    pub expansion: ConjunctiveQuery,
    /// The canonical database of the expansion.
    pub database: Database,
    /// The goal tuple derived by Π on [`Counterexample::database`] but not
    /// answered by Θ.
    pub goal_tuple: Vec<Constant>,
}

/// The outcome of a containment decision.
#[derive(Clone, Debug)]
pub struct ContainmentResult {
    /// Does the containment hold?
    pub contained: bool,
    /// A counterexample when it does not.
    pub counterexample: Option<Counterexample>,
    /// Instrumentation.
    pub stats: ContainmentStats,
}

/// Options for [`datalog_contained_in_ucq_with`].
#[derive(Clone, Copy, Debug)]
pub struct DecisionOptions {
    /// Use the word-automata fast path when the program allows it.
    pub allow_word_path: bool,
    /// Use the antichain optimisation in tree containment.
    pub antichain: bool,
    /// Abort tree containment after this many product pairs (`None`: never).
    pub max_pairs: Option<usize>,
    /// Consult (and populate) the shared [`crate::cache::DecisionCache`].
    /// On by default; switch off to run the uncached reference path the
    /// differential tests lock the cache against.
    pub use_cache: bool,
    /// Abort unfolding (the `equivalence` candidate's rewriting into a UCQ,
    /// or the depth-`k` expansions of `bounded`) once any predicate
    /// accumulates this many disjuncts.  Unfoldings can be exponentially
    /// large, and this budget is the only bound on that phase —
    /// [`DecisionOptions::max_pairs`] kicks in only later, during the
    /// automata containment.  Not part of the cache key: a budget either
    /// errors before any cache interaction or leaves the unfolding (and
    /// hence every verdict) unchanged.
    pub max_unfold: usize,
    /// When set, install these per-segment capacity limits on the consulted
    /// cache before deciding (see [`crate::cache::CacheLimits`]).  Like
    /// `max_unfold`, this is **not** part of the cache key: limits govern
    /// what the cache remembers, never what a decision answers — the
    /// invariant `tests/cache_eviction_differential.rs` locks.
    pub cache_limits: Option<crate::cache::CacheLimits>,
    /// Evaluation strategy for the canonical-database checks run by the
    /// `Π' ⊆ Π` direction ([`crate::cq_in_datalog`]).  All strategies
    /// compute the same goal relation (the strategy differential suite locks
    /// this), so like `cache_limits` this is **not** part of the cache key —
    /// it changes how a verdict is computed, never what it is.
    /// [`datalog::eval::Strategy::Magic`] evaluates goal-directed: the
    /// fixpoint is restricted to facts relevant to the frozen head tuple.
    /// The default is [`datalog::eval::Strategy::Auto`]: a per-check planner
    /// pass resolves to magic when the adorned goal can prune the fixpoint
    /// and to indexed otherwise (see
    /// [`datalog::eval::resolve_auto_strategy`]).
    pub strategy: Strategy,
}

impl Default for DecisionOptions {
    fn default() -> Self {
        DecisionOptions {
            allow_word_path: true,
            antichain: true,
            max_pairs: None,
            use_cache: true,
            max_unfold: usize::MAX,
            cache_limits: None,
            strategy: Strategy::Auto,
        }
    }
}

/// Errors reported by the decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecisionError {
    /// The goal predicate does not occur in the program.
    UnknownGoal(Pred),
    /// The union of conjunctive queries mixes arities.
    InconsistentUcq,
    /// The search exceeded the configured pair limit.
    ResourceLimit,
}

impl DecisionError {
    /// Stable machine-readable code identifying the variant, for transports
    /// (the server wire protocol) that must not couple to `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            DecisionError::UnknownGoal(_) => "unknown_goal",
            DecisionError::InconsistentUcq => "inconsistent_ucq",
            DecisionError::ResourceLimit => "resource_limit",
        }
    }
}

impl std::fmt::Display for DecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionError::UnknownGoal(p) => write!(f, "goal predicate `{p}` not found in program"),
            DecisionError::InconsistentUcq => {
                write!(f, "disjuncts of the UCQ have different arities")
            }
            DecisionError::ResourceLimit => {
                write!(f, "containment search exceeded its resource limit")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

/// Decide `Π(goal) ⊆ Θ` (Theorem 5.12) with default options.
pub fn datalog_contained_in_ucq(
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
) -> Result<ContainmentResult, DecisionError> {
    datalog_contained_in_ucq_with(program, goal, ucq, DecisionOptions::default())
}

/// Decide `Π(goal) ⊆ Θ` with explicit options.
///
/// Unless `options.use_cache` is off, the decision is memoised in the
/// shared [`crate::cache::DecisionCache`] keyed on the interned program
/// structure, goal, query key, and options: repeated calls (from
/// [`crate::bounded::find_bound`], [`crate::equivalence`], or the
/// [`mod@crate::optimize`] passes) recall the stored verdict, counterexample,
/// and instrumentation instead of rebuilding the automata.
pub fn datalog_contained_in_ucq_with(
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
    options: DecisionOptions,
) -> Result<ContainmentResult, DecisionError> {
    datalog_contained_in_ucq_in(
        crate::cache::DecisionCache::global(),
        program,
        goal,
        ucq,
        options,
    )
}

/// Decide `Π(goal) ⊆ Θ` against an explicit [`crate::cache::DecisionCache`]
/// instead of the process-wide one.
///
/// This is how suites that must not share state across tests (the eviction
/// differential, the snapshot property tests) run the cached engine on a
/// private cache; `options.use_cache = false` ignores `cache` entirely and
/// runs the uncached reference path.
pub fn datalog_contained_in_ucq_in(
    cache: &crate::cache::DecisionCache,
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
    options: DecisionOptions,
) -> Result<ContainmentResult, DecisionError> {
    decide_with_sink(
        cache,
        program,
        goal,
        ucq,
        options,
        Schedule::MinSubset,
        &mut GlobalSink,
    )
}

/// Options for a traced decision ([`datalog_contained_in_ucq_traced`]).
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// How much detail to record; see [`MetricsLevel`].
    pub level: MetricsLevel,
    /// Keep at most this many events; the rest are counted as dropped.
    pub max_events: usize,
    /// Worklist schedule for the tree-containment engine.  Verdicts are
    /// schedule-independent (the scheduling differential tests lock this),
    /// so exposing it here lets a trace compare the two orders.
    pub schedule: Schedule,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            level: MetricsLevel::Debug,
            max_events: 512,
            schedule: Schedule::MinSubset,
        }
    }
}

/// A containment decision together with the structured events recorded
/// while it ran.
#[derive(Clone, Debug)]
pub struct TracedDecision {
    /// The decision itself, identical to the untraced result.
    pub result: ContainmentResult,
    /// The recorded events, at most `max_events` of them, in emission order.
    pub events: Vec<Event>,
    /// True when the event budget was exhausted.
    pub truncated: bool,
    /// How many events were discarded after the budget was exhausted.
    pub dropped: usize,
}

/// Decide `Π(goal) ⊆ Θ` while recording structured trace events — the
/// engine behind the server's `trace` verb.
///
/// The decision is computed exactly as [`datalog_contained_in_ucq_with`]
/// would (including cache consultation, unless `options.use_cache` is off —
/// note a cache hit short-circuits the engines, so only the `decision` span
/// event is recorded for it).  At [`MetricsLevel::Debug`] and above, a
/// produced counterexample is additionally *verified*: the program is
/// re-evaluated goal-directed on the counterexample's canonical database,
/// which is where per-iteration fixpoint events (and the strategy-planner
/// decision) enter a containment trace.
pub fn datalog_contained_in_ucq_traced(
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
    options: DecisionOptions,
    trace: TraceOptions,
) -> Result<TracedDecision, DecisionError> {
    let mut sink = RecordingSink::new(trace.level, trace.max_events);
    let result = decide_with_sink(
        crate::cache::DecisionCache::global(),
        program,
        goal,
        ucq,
        options,
        trace.schedule,
        &mut sink,
    )?;
    if sink.level() >= MetricsLevel::Debug {
        if let Some(cex) = &result.counterexample {
            let pattern = datalog::atom::Atom::new(
                goal,
                cex.goal_tuple
                    .iter()
                    .map(|&c| datalog::term::Term::Const(c))
                    .collect(),
            );
            let eval = datalog::eval::evaluate_goal_with_sink(
                program,
                &cex.database,
                &pattern,
                datalog::eval::EvalOptions {
                    strategy: options.strategy,
                    ..Default::default()
                },
                &mut sink,
            );
            sink.emit(Event::new(
                "witness_check",
                vec![("derived", FieldValue::Flag(!eval.relation(goal).is_empty()))],
            ));
        }
    }
    Ok(TracedDecision {
        truncated: sink.truncated(),
        dropped: sink.dropped,
        events: sink.events,
        result,
    })
}

/// The shared cached path: validation, cache consultation, and the
/// `Counters`-level `decision` span event around [`decide_uncached`].
fn decide_with_sink<S: MetricsSink>(
    cache: &crate::cache::DecisionCache,
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
    options: DecisionOptions,
    schedule: Schedule,
    sink: &mut S,
) -> Result<ContainmentResult, DecisionError> {
    if !program.predicates().contains(&goal) {
        return Err(DecisionError::UnknownGoal(goal));
    }
    if !ucq.consistent_arity() {
        return Err(DecisionError::InconsistentUcq);
    }
    let start = (sink.level() >= MetricsLevel::Counters).then(Instant::now);
    if options.use_cache {
        if let Some(limits) = options.cache_limits {
            cache.set_limits(limits);
        }
        let key = crate::cache::DecisionKey::new(program, goal, ucq, options);
        if let Some(result) = cache.lookup_decision(&key) {
            emit_decision(sink, &result, true, options, start);
            return Ok(result);
        }
        let result = decide_uncached(program, goal, ucq, options, schedule, sink)?;
        cache.store_decision(key, &result);
        emit_decision(sink, &result, false, options, start);
        return Ok(result);
    }
    let result = decide_uncached(program, goal, ucq, options, schedule, sink)?;
    emit_decision(sink, &result, false, options, start);
    Ok(result)
}

/// Emit the `decision` span event closing a containment decision.
fn emit_decision<S: MetricsSink>(
    sink: &mut S,
    result: &ContainmentResult,
    cache_hit: bool,
    options: DecisionOptions,
    start: Option<Instant>,
) {
    if sink.level() < MetricsLevel::Counters {
        return;
    }
    let path = match result.stats.path {
        DecisionPath::WordAutomata => "word",
        DecisionPath::TreeAutomata => "tree",
    };
    let mut fields = vec![
        ("cache_hit", FieldValue::Flag(cache_hit)),
        ("contained", FieldValue::Flag(result.contained)),
        ("path", FieldValue::Text(path.to_string())),
        ("explored", FieldValue::Num(result.stats.explored as u64)),
        ("max_unfold", FieldValue::Num(options.max_unfold as u64)),
    ];
    if let Some(start) = start {
        fields.push((
            "micros",
            FieldValue::Num(start.elapsed().as_micros() as u64),
        ));
    }
    sink.emit(Event::new("decision", fields));
}

/// The uncached decision path (the reference oracle).
fn decide_uncached<S: MetricsSink>(
    program: &Program,
    goal: Pred,
    ucq: &Ucq,
    options: DecisionOptions,
    schedule: Schedule,
    sink: &mut S,
) -> Result<ContainmentResult, DecisionError> {
    let start = Instant::now();

    // Build A_ptrees(Q, Π).
    let ptrees = PtreesAutomaton::build(program, goal);
    let ptrees_stats = ptrees.stats();

    // Build the union of the A_θ automata over the same label context.
    let mut query_automaton: TreeAutomaton<ProofLabel> = TreeAutomaton::new(0);
    let mut query_stats = AutomatonStats::default();
    for disjunct in &ucq.disjuncts {
        let a_theta = CqAutomaton::build(&ptrees.context, goal, disjunct);
        let stats = a_theta.stats();
        query_stats.states += stats.states;
        query_stats.transitions += stats.transitions;
        query_automaton = tree_union(&query_automaton, &a_theta.automaton);
    }

    // Fast path: every rule has at most one IDB subgoal ⇒ proof trees are
    // paths ⇒ word automata suffice.
    let chain_shaped = is_chain_program(program);
    if options.allow_word_path && chain_shaped {
        let word_ptrees = tree_to_word(&ptrees.automaton);
        let word_queries = tree_to_word(&query_automaton);
        let outcome = word_contained_in(&word_ptrees, &word_queries);
        let explored = outcome.explored();
        let (contained, counterexample) = match outcome {
            WordContainment::Contained { .. } => (true, None),
            WordContainment::NotContained { witness, .. } => {
                let tree = word_to_tree(&witness);
                (false, tree.map(|t| build_counterexample(&ptrees, t)))
            }
        };
        return Ok(ContainmentResult {
            contained,
            counterexample,
            stats: ContainmentStats {
                path: DecisionPath::WordAutomata,
                ptrees: ptrees_stats,
                queries: query_stats,
                explored,
                pairs_dominated: 0,
                pops_skipped_dead: 0,
                max_frontier: 0,
                micros: start.elapsed().as_micros(),
            },
        });
    }

    // General path: tree-automata containment.
    let outcome = contained_in_with_sink(
        &ptrees.automaton,
        &query_automaton,
        ContainmentOptions {
            antichain: options.antichain,
            max_pairs: options.max_pairs,
            schedule,
        },
        sink,
    );
    let engine_stats = *outcome.stats();
    let explored = engine_stats.pairs;
    let (contained, counterexample) = match outcome {
        TreeContainment::Contained { .. } => (true, None),
        TreeContainment::NotContained { witness, .. } => {
            (false, Some(build_counterexample(&ptrees, witness)))
        }
        TreeContainment::Unknown { .. } => return Err(DecisionError::ResourceLimit),
    };
    Ok(ContainmentResult {
        contained,
        counterexample,
        stats: ContainmentStats {
            path: DecisionPath::TreeAutomata,
            ptrees: ptrees_stats,
            queries: query_stats,
            explored,
            pairs_dominated: engine_stats.pairs_dominated,
            pops_skipped_dead: engine_stats.pops_skipped_dead,
            max_frontier: engine_stats.max_frontier,
            micros: start.elapsed().as_micros(),
        },
    })
}

/// Decide `Π(goal) ⊆ θ` for a single conjunctive query (Corollary 5.7).
pub fn datalog_contained_in_cq(
    program: &Program,
    goal: Pred,
    theta: &ConjunctiveQuery,
) -> Result<ContainmentResult, DecisionError> {
    datalog_contained_in_ucq(program, goal, &Ucq::singleton(theta.clone()))
}

/// Does every rule of the program have at most one IDB body atom?  For such
/// programs every proof tree is a path and word automata suffice.  (This is
/// a strengthening of the paper's "linear" condition, which only restricts
/// *recursive* subgoals; programs that are linear but have several
/// non-recursive IDB subgoals still go through the tree path.)
pub fn is_chain_program(program: &Program) -> bool {
    let idb = program.idb_predicates();
    program.rules().iter().all(|rule| {
        rule.body
            .iter()
            .filter(|atom| idb.contains(&atom.pred))
            .count()
            <= 1
    })
}

/// Reinterpret a tree automaton whose transitions all have arity ≤ 1 as a
/// word automaton: a unary tree is the word of its labels read from the
/// root to the leaf (inclusive).
fn tree_to_word(automaton: &TreeAutomaton<ProofLabel>) -> Nfa<ProofLabel> {
    let mut nfa = Nfa::new(automaton.state_count() + 1);
    let accept = automaton.state_count();
    nfa.add_accepting(accept);
    for &s in automaton.initial() {
        nfa.add_initial(s);
    }
    for (state, label, tuple) in automaton.transitions() {
        match tuple.len() {
            0 => nfa.add_transition(state, label.clone(), accept),
            1 => nfa.add_transition(state, label.clone(), tuple[0]),
            _ => unreachable!("tree_to_word called on an automaton with branching transitions"),
        }
    }
    nfa
}

/// Convert a root-to-leaf label word back into the unary proof tree it
/// denotes.  Returns `None` for the empty word (which cannot arise: every
/// accepted word ends with a leaf label).
fn word_to_tree(word: &[ProofLabel]) -> Option<ProofTree> {
    let mut iter = word.iter().rev();
    let mut tree = ProofTree::leaf(iter.next()?.clone());
    for label in iter {
        tree = ProofTree::node(label.clone(), vec![tree]);
    }
    Some(tree)
}

/// Materialise a counterexample from a witness proof tree.
fn build_counterexample(ptrees: &PtreesAutomaton, witness: ProofTree) -> Counterexample {
    let analysis = ProofTreeAnalysis::new(&witness);
    let expansion = analysis.to_expansion(&ptrees.context);
    let frozen = cq::canonical::canonical_database(&expansion);
    Counterexample {
        proof_tree: witness,
        expansion,
        database: frozen.database,
        goal_tuple: frozen.head_tuple,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::eval::evaluate_ucq;
    use cq::generate::{boolean_path_query, bounded_path_ucq_binary};
    use datalog::eval::evaluate;
    use datalog::generate::{transitive_closure, transitive_closure_nonlinear};
    use datalog::parser::parse_program;

    fn tc() -> Program {
        transitive_closure("e", "e")
    }

    #[test]
    fn transitive_closure_not_contained_in_bounded_paths() {
        // TC produces paths of every length, so it is not contained in the
        // union of path queries of length ≤ 3.
        let ucq = bounded_path_ucq_binary("e", 3);
        let result = datalog_contained_in_ucq(&tc(), Pred::new("p"), &ucq).unwrap();
        assert!(!result.contained);
        assert_eq!(result.stats.path, DecisionPath::WordAutomata);

        // The counterexample must be verifiable by brute force: Π derives
        // the goal tuple on the canonical database, Θ does not answer it.
        let cex = result.counterexample.unwrap();
        let eval = evaluate(&tc(), &cex.database);
        assert!(eval.relation(Pred::new("p")).contains(&cex.goal_tuple));
        assert!(!evaluate_ucq(&ucq, &cex.database).contains(&cex.goal_tuple));
        // The shortest refutation is a path of length 4.
        assert_eq!(cex.expansion.body.len(), 4);
    }

    #[test]
    fn single_edge_program_is_contained_in_its_own_query() {
        // Π: p(X, Y) :- e(X, Y).  Θ: q(X, Y) :- e(X, Y).  Containment holds.
        let program = parse_program("p(X, Y) :- e(X, Y).").unwrap();
        let ucq = Ucq::parse("q(X, Y) :- e(X, Y).").unwrap();
        let result = datalog_contained_in_ucq(&program, Pred::new("p"), &ucq).unwrap();
        assert!(result.contained);
        assert!(result.counterexample.is_none());
    }

    #[test]
    fn tc_contained_in_boolean_edge_query() {
        // Every expansion of TC contains at least one edge, so TC (as a
        // Boolean implication: whenever p(x,y) holds, some edge exists) is
        // contained in the Boolean query ∃ e.  Arities differ (2 vs 0), so
        // we phrase Θ with the same arity but existential body.
        let ucq = Ucq::parse("q(X, Y) :- e(U, V).").unwrap();
        let result = datalog_contained_in_ucq(&tc(), Pred::new("p"), &ucq).unwrap();
        assert!(result.contained);
    }

    #[test]
    fn tc_contained_in_reachability_superset_fails_for_wrong_edge() {
        // Θ uses a different EDB predicate; containment must fail.
        let ucq = Ucq::parse("q(X, Y) :- f(X, Y).").unwrap();
        let result = datalog_contained_in_ucq(&tc(), Pred::new("p"), &ucq).unwrap();
        assert!(!result.contained);
    }

    #[test]
    fn nonlinear_tc_uses_tree_path_and_agrees_with_linear_tc() {
        let linear = tc();
        let nonlinear = transitive_closure_nonlinear("e");
        let ucq = bounded_path_ucq_binary("e", 2);
        let r1 = datalog_contained_in_ucq(&linear, Pred::new("p"), &ucq).unwrap();
        let r2 = datalog_contained_in_ucq(&nonlinear, Pred::new("p"), &ucq).unwrap();
        assert_eq!(r1.contained, r2.contained);
        assert!(!r2.contained);
        assert_eq!(r2.stats.path, DecisionPath::TreeAutomata);
        // The nonlinear counterexample is also verifiable.
        let cex = r2.counterexample.unwrap();
        let eval = evaluate(&nonlinear, &cex.database);
        assert!(eval.relation(Pred::new("p")).contains(&cex.goal_tuple));
    }

    #[test]
    fn example_1_1_pi1_is_contained_in_its_nonrecursive_unfolding() {
        // Π₁ from Example 1.1 is equivalent to a UCQ; containment in that
        // UCQ holds.
        let program = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), buys(Z, Y).",
        )
        .unwrap();
        let ucq = Ucq::parse(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), likes(Z, Y).",
        )
        .unwrap();
        let result = datalog_contained_in_ucq(&program, Pred::new("buys"), &ucq).unwrap();
        assert!(result.contained, "Π₁ ⊆ Θ must hold (Example 1.1)");
    }

    #[test]
    fn example_1_1_pi2_is_not_contained_in_the_analogous_ucq() {
        let program = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), buys(Z, Y).",
        )
        .unwrap();
        let ucq = Ucq::parse(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), likes(Z, Y).",
        )
        .unwrap();
        let result = datalog_contained_in_ucq(&program, Pred::new("buys"), &ucq).unwrap();
        assert!(!result.contained, "Π₂ ⊄ Θ (Example 1.1)");
        // Verify the counterexample concretely.
        let cex = result.counterexample.unwrap();
        let eval = evaluate(&program, &cex.database);
        assert!(eval.relation(Pred::new("buys")).contains(&cex.goal_tuple));
        assert!(!evaluate_ucq(&ucq, &cex.database).contains(&cex.goal_tuple));
    }

    #[test]
    fn word_and_tree_paths_agree_on_linear_programs() {
        let ucq = bounded_path_ucq_binary("e", 2);
        let with_word = datalog_contained_in_ucq_with(
            &tc(),
            Pred::new("p"),
            &ucq,
            DecisionOptions {
                allow_word_path: true,
                ..DecisionOptions::default()
            },
        )
        .unwrap();
        let with_tree = datalog_contained_in_ucq_with(
            &tc(),
            Pred::new("p"),
            &ucq,
            DecisionOptions {
                allow_word_path: false,
                ..DecisionOptions::default()
            },
        )
        .unwrap();
        assert_eq!(with_word.contained, with_tree.contained);
        assert_eq!(with_word.stats.path, DecisionPath::WordAutomata);
        assert_eq!(with_tree.stats.path, DecisionPath::TreeAutomata);
    }

    #[test]
    fn boolean_goal_containment() {
        // Π: c :- p(X, Y), p recursive; Θ: Boolean "some edge exists".
        let program = parse_program(
            "c :- p(X, Y).\n\
             p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let yes = Ucq::parse("q :- e(U, V).").unwrap();
        let no = Ucq::parse("q :- e(U, U).").unwrap();
        assert!(
            datalog_contained_in_ucq(&program, Pred::new("c"), &yes)
                .unwrap()
                .contained
        );
        assert!(
            !datalog_contained_in_ucq(&program, Pred::new("c"), &no)
                .unwrap()
                .contained
        );
    }

    #[test]
    fn unknown_goal_and_inconsistent_ucq_are_errors() {
        let ucq = Ucq::parse("q(X) :- e(X, Y).\nq(X, Y) :- e(X, Y).").unwrap();
        assert_eq!(
            datalog_contained_in_ucq(&tc(), Pred::new("zzz"), &Ucq::empty()).unwrap_err(),
            DecisionError::UnknownGoal(Pred::new("zzz"))
        );
        assert_eq!(
            datalog_contained_in_ucq(&tc(), Pred::new("p"), &ucq).unwrap_err(),
            DecisionError::InconsistentUcq
        );
    }

    #[test]
    fn empty_ucq_contains_only_programs_with_empty_goal() {
        // TC derives facts, so it is not contained in the empty union…
        assert!(
            !datalog_contained_in_ucq(&tc(), Pred::new("p"), &Ucq::empty())
                .unwrap()
                .contained
        );
        // …but a program with no exit rule is.
        let no_exit = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).").unwrap();
        assert!(
            datalog_contained_in_ucq(&no_exit, Pred::new("p"), &Ucq::empty())
                .unwrap()
                .contained
        );
    }

    #[test]
    fn containment_in_boolean_path_queries_of_increasing_length() {
        // Boolean path queries: a k-path query contains TC's Boolean
        // projection only for k = 1 (every expansion has ≥ 1 edge), not for
        // k = 2 (the single-edge expansion has no 2-path).
        let one = Ucq::singleton(boolean_path_query("e", 1));
        let two = Ucq::singleton(boolean_path_query("e", 2));
        let program = parse_program(
            "c :- p(X, Y).\n\
             p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        assert!(
            datalog_contained_in_ucq(&program, Pred::new("c"), &one)
                .unwrap()
                .contained
        );
        assert!(
            !datalog_contained_in_ucq(&program, Pred::new("c"), &two)
                .unwrap()
                .contained
        );
    }

    #[test]
    fn stats_are_populated() {
        let ucq = bounded_path_ucq_binary("e", 2);
        let result = datalog_contained_in_ucq(&tc(), Pred::new("p"), &ucq).unwrap();
        assert!(result.stats.ptrees.states > 0);
        assert!(result.stats.queries.states > 0);
        assert!(result.stats.explored > 0);
    }

    #[test]
    fn traced_decision_matches_untraced_and_records_events() {
        use std::collections::BTreeSet;
        let ucq = bounded_path_ucq_binary("e", 3);
        // Force the tree path (per-pop events) and skip the cache so the
        // engines actually run.
        let options = DecisionOptions {
            use_cache: false,
            allow_word_path: false,
            ..DecisionOptions::default()
        };
        let plain = datalog_contained_in_ucq_with(&tc(), Pred::new("p"), &ucq, options).unwrap();
        let traced = datalog_contained_in_ucq_traced(
            &tc(),
            Pred::new("p"),
            &ucq,
            options,
            TraceOptions {
                level: MetricsLevel::Trace,
                max_events: usize::MAX,
                ..TraceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.contained, traced.result.contained);
        assert_eq!(plain.stats.explored, traced.result.stats.explored);
        assert!(!traced.truncated);
        let kinds: BTreeSet<&str> = traced.events.iter().map(|e| e.kind).collect();
        for kind in [
            "pop",
            "propagate",
            "containment",
            "decision",
            "strategy",
            "iteration",
            "eval",
            "witness_check",
        ] {
            assert!(kinds.contains(kind), "missing event kind {kind}");
        }
        // The witness check must re-derive the counterexample's goal tuple.
        let check = traced
            .events
            .iter()
            .find(|e| e.kind == "witness_check")
            .unwrap();
        assert_eq!(check.flag("derived"), Some(true));
        let span = traced.events.iter().find(|e| e.kind == "decision").unwrap();
        assert_eq!(span.flag("cache_hit"), Some(false));
        assert_eq!(span.text("path"), Some("tree"));
    }

    #[test]
    fn traced_decision_honours_the_event_budget() {
        let ucq = bounded_path_ucq_binary("e", 3);
        let options = DecisionOptions {
            use_cache: false,
            allow_word_path: false,
            ..DecisionOptions::default()
        };
        let small = datalog_contained_in_ucq_traced(
            &tc(),
            Pred::new("p"),
            &ucq,
            options,
            TraceOptions {
                level: MetricsLevel::Trace,
                max_events: 3,
                ..TraceOptions::default()
            },
        )
        .unwrap();
        assert!(small.truncated);
        assert_eq!(small.events.len(), 3);
        assert!(small.dropped > 0);
    }

    #[test]
    fn traced_decision_is_schedule_independent() {
        let ucq = bounded_path_ucq_binary("e", 3);
        let options = DecisionOptions {
            use_cache: false,
            allow_word_path: false,
            ..DecisionOptions::default()
        };
        let verdicts: Vec<bool> = [Schedule::MinSubset, Schedule::Fifo]
            .into_iter()
            .map(|schedule| {
                datalog_contained_in_ucq_traced(
                    &tc(),
                    Pred::new("p"),
                    &ucq,
                    options,
                    TraceOptions {
                        schedule,
                        ..TraceOptions::default()
                    },
                )
                .unwrap()
                .result
                .contained
            })
            .collect();
        assert_eq!(verdicts[0], verdicts[1]);
    }
}
