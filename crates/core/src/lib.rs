//! # nonrec-equivalence
//!
//! Decision procedures for the containment and equivalence of recursive and
//! nonrecursive Datalog programs, reproducing Chaudhuri & Vardi, *On the
//! Equivalence of Recursive and Nonrecursive Datalog Programs* (PODS 1992 /
//! JCSS 54, 1997).
//!
//! The paper's pipeline, and this crate's module map:
//!
//! | Paper | Module |
//! |---|---|
//! | Expansion / unfolding expansion trees (§2.3, Fig. 1) | [`expansion`] |
//! | Nonrecursive program → union of conjunctive queries (§6, Ex. 6.1/6.6) | [`unfold`] |
//! | Proof trees over `var(Π)`, connectedness, distinguished occurrences (§5.1, Fig. 2) | [`proof_tree`], [`labels`] |
//! | `A_ptrees(Q,Π)` (Prop. 5.9) | [`ptrees_automaton`] |
//! | `A_θ(Q,Π)` (Prop. 5.10) | [`cq_automaton`] |
//! | Π ⊆ UCQ via automata containment (Thms. 5.11, 5.12) | [`containment`] |
//! | UCQ ⊆ Π via canonical databases (\[CK86]) | [`cq_in_datalog`] |
//! | Π vs. nonrecursive Π′: containment and equivalence (Thms. 3.2, 6.4, 6.5, 6.7) | [`equivalence`] |
//! | Equivalence to the own depth-k unfolding (recursion elimination) | [`bounded`], [`mod@optimize`] |
//! | First-order properties of expansions, e.g. strong non-redundancy (§3) | [`properties`] |
//! | Semantics-preserving program rewrites built on containment (§1 motivation) | [`mod@optimize`] |
//!
//! ## Quick start
//!
//! Example 1.1 of the paper, end to end:
//!
//! ```
//! use datalog::parser::parse_program;
//! use datalog::atom::Pred;
//! use nonrec_equivalence::equivalence::equivalent_to_nonrecursive;
//!
//! // Π₂: buys via "knows" chains — inherently recursive.
//! let recursive = parse_program(
//!     "buys(X, Y) :- likes(X, Y).\n\
//!      buys(X, Y) :- knows(X, Z), buys(Z, Y).").unwrap();
//! // Candidate nonrecursive form (one unfolding step).
//! let nonrecursive = parse_program(
//!     "buys(X, Y) :- likes(X, Y).\n\
//!      buys(X, Y) :- knows(X, Z), likes(Z, Y).").unwrap();
//!
//! let result = equivalent_to_nonrecursive(&recursive, Pred::new("buys"), &nonrecursive).unwrap();
//! assert!(!result.verdict.is_equivalent());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounded;
pub mod cache;
pub mod containment;
pub mod cq_automaton;
pub mod cq_in_datalog;
pub mod equivalence;
pub mod expansion;
pub mod labels;
pub mod optimize;
pub mod proof_tree;
pub mod properties;
pub mod ptrees_automaton;
pub mod snapshot;
pub mod unfold;
pub mod unify;

pub use cache::{CacheLimits, CacheSizes, CacheStats, DecisionCache, ProgramKey};
pub use containment::{
    datalog_contained_in_cq, datalog_contained_in_ucq, datalog_contained_in_ucq_traced,
    ContainmentResult, Counterexample, DecisionOptions, Schedule, TraceOptions, TracedDecision,
};
pub use cq_in_datalog::{
    cq_contained_in_datalog, cq_contained_in_datalog_with, strategy_decision_counts,
    ucq_contained_in_datalog, ucq_contained_in_datalog_with, StrategyCounts,
};
pub use equivalence::{
    datalog_contained_in_nonrecursive, equivalent_to_nonrecursive, EquivalenceResult,
    EquivalenceVerdict,
};
pub use optimize::{eliminate_recursion, optimize, OptimizeOptions, OptimizeReport};
pub use snapshot::{SnapshotError, SNAPSHOT_VERSION};
pub use unfold::{expansions_up_to_depth, expansions_up_to_depth_limited, unfold_nonrecursive};
