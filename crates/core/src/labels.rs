//! The proof-tree label alphabet.
//!
//! Section 5.1: a proof tree for a program Π is an expansion tree all of
//! whose variables come from the bounded set `var(Π) = {x1, …, x_varnum(Π)}`.
//! Its node labels are pairs `(α, ρ)` of an IDB atom α over `var(Π)` and a
//! rule instance ρ over `var(Π)` whose head is α.  Since the atom is
//! determined by the rule instance, our label type stores the rule index and
//! the instance; the head atom doubles as the automaton state.
//!
//! This module enumerates, for a given goal atom, all rule instances over
//! `var(Π)` whose head equals that atom — the transitions of the
//! proof-tree automaton of Proposition 5.9 and of the conjunctive-query
//! automata of Proposition 5.10 are indexed by exactly these labels.

use std::fmt;

use datalog::atom::{Atom, Pred};
use datalog::program::Program;
use datalog::rule::Rule;
use datalog::substitution::Substitution;
use datalog::term::{Term, Var};

/// A proof-tree node label: an instance over `var(Π)` of a program rule.
///
/// The label's atom (the paper's α) is `instance.head`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProofLabel {
    /// Index of the originating rule in the program.
    pub rule_index: usize,
    /// The rule instance (all variables in `var(Π)`).
    pub instance: Rule,
}

impl ProofLabel {
    /// The IDB atom labelling the node (the head of the rule instance).
    pub fn atom(&self) -> &Atom {
        &self.instance.head
    }
}

impl fmt::Display for ProofLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, r{}: {}⟩",
            self.instance.head, self.rule_index, self.instance
        )
    }
}

impl fmt::Debug for ProofLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Build an atom `pred(x_{i1}, …, x_{ik})` over the canonical proof-tree
/// variables.  Note that the textual parser would read `x1` as a *constant*
/// (lowercase identifier), so goal atoms over `var(Π)` must be constructed
/// programmatically — this helper is the way to do it.
pub fn canonical_atom(pred: &str, indices: &[usize]) -> Atom {
    Atom::new(
        Pred::new(pred),
        indices
            .iter()
            .map(|&i| Term::Var(Var::canonical(i)))
            .collect(),
    )
}

/// The label-enumeration context for a program: its `var(Π)` set, IDB
/// predicates, and rules.
#[derive(Clone)]
pub struct LabelContext {
    program: Program,
    variables: Vec<Var>,
    idb: std::collections::BTreeSet<Pred>,
}

impl LabelContext {
    /// Build a context for the program.
    pub fn new(program: &Program) -> Self {
        LabelContext {
            variables: program.var_set(),
            idb: program.idb_predicates(),
            program: program.clone(),
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The bounded variable set `var(Π)`.
    pub fn variables(&self) -> &[Var] {
        &self.variables
    }

    /// Is the predicate an IDB predicate of the program?
    pub fn is_idb(&self, pred: Pred) -> bool {
        self.idb.contains(&pred)
    }

    /// The IDB atoms in the body of a rule instance, with their positions.
    pub fn idb_body_atoms<'a>(&'a self, instance: &'a Rule) -> Vec<(usize, &'a Atom)> {
        instance
            .body
            .iter()
            .enumerate()
            .filter(|(_, a)| self.is_idb(a.pred))
            .collect()
    }

    /// The EDB atoms in the body of a rule instance.
    pub fn edb_body_atoms<'a>(&'a self, instance: &'a Rule) -> Vec<&'a Atom> {
        instance
            .body
            .iter()
            .filter(|a| !self.is_idb(a.pred))
            .collect()
    }

    /// All atoms `goal(s)` with `s` a tuple over `var(Π)` — the start states
    /// of the proof-tree automaton (Proposition 5.9).
    pub fn goal_atoms(&self, goal: Pred) -> Vec<Atom> {
        let arity = self.program.arity_of(goal).unwrap_or(0);
        let mut out = Vec::new();
        let mut tuple = vec![0usize; arity];
        loop {
            out.push(Atom::new(
                goal,
                tuple
                    .iter()
                    .map(|&i| Term::Var(self.variables[i]))
                    .collect(),
            ));
            if arity == 0 {
                break;
            }
            let mut carry = true;
            for slot in tuple.iter_mut() {
                if carry {
                    *slot += 1;
                    if *slot == self.variables.len() {
                        *slot = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }
        out
    }

    /// All rule instances over `var(Π)` whose head equals `atom`, paired
    /// with their rule index.  These are exactly the labels that may appear
    /// at a proof-tree node whose goal is `atom`.
    pub fn labels_for(&self, atom: &Atom) -> Vec<ProofLabel> {
        let mut out = Vec::new();
        for (rule_index, rule) in self.program.rules().iter().enumerate() {
            if rule.head.pred != atom.pred || rule.head.arity() != atom.arity() {
                continue;
            }
            // Unify the rule head with the atom (one-way: head variables are
            // bound to the atom's terms).
            let mut head_binding = Substitution::new();
            if !head_binding.match_atom(&rule.head, atom) {
                continue;
            }
            // The remaining rule variables range over all of var(Π).
            let free: Vec<Var> = rule
                .variables()
                .into_iter()
                .filter(|v| head_binding.get(*v).is_none())
                .collect();
            let mut assignment = vec![0usize; free.len()];
            loop {
                let mut subst = head_binding.clone();
                for (v, &i) in free.iter().zip(&assignment) {
                    subst.bind_var(*v, Term::Var(self.variables[i]));
                }
                out.push(ProofLabel {
                    rule_index,
                    instance: rule.apply(&subst),
                });
                if free.is_empty() {
                    break;
                }
                let mut carry = true;
                for slot in assignment.iter_mut() {
                    if carry {
                        *slot += 1;
                        if *slot == self.variables.len() {
                            *slot = 0;
                        } else {
                            carry = false;
                        }
                    }
                }
                if carry {
                    break;
                }
            }
        }
        out
    }

    /// Count how many labels exist in total (over all head atoms of all IDB
    /// predicates) — the alphabet-size statistic reported by the benches.
    /// This enumerates lazily per head atom and may be expensive for large
    /// `var(Π)`; callers that only need the reachable part should count
    /// through the automaton instead.
    pub fn total_label_estimate(&self) -> u128 {
        let m = self.variables.len() as u128;
        let mut total: u128 = 0;
        for rule in self.program.rules() {
            let vars = rule.variables().len() as u32;
            total = total.saturating_add(m.saturating_pow(vars));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::generate::transitive_closure;
    use datalog::parser::parse_program;

    fn tc() -> Program {
        transitive_closure("e", "ep")
    }

    #[test]
    fn goal_atoms_enumerate_all_tuples_over_var_pi() {
        let ctx = LabelContext::new(&tc());
        // varnum(TC) = 6, goal arity 2 → 36 start atoms.
        let atoms = ctx.goal_atoms(Pred::new("p"));
        assert_eq!(atoms.len(), 36);
        assert!(atoms
            .iter()
            .all(|a| a.pred == Pred::new("p") && a.arity() == 2));
        // Includes the repeated-variable atom p(x1, x1).
        assert!(atoms.iter().any(|a| a.terms[0] == a.terms[1]));
    }

    #[test]
    fn zero_ary_goal_has_one_goal_atom() {
        let p = parse_program("c :- bit(X), start(X). bit(X) :- e(X).").unwrap();
        let ctx = LabelContext::new(&p);
        assert_eq!(ctx.goal_atoms(Pred::new("c")).len(), 1);
    }

    #[test]
    fn labels_for_tc_goal_atom() {
        let ctx = LabelContext::new(&tc());
        let goal = canonical_atom("p", &[1, 2]);
        let labels = ctx.labels_for(&goal);
        // Recursive rule: Z free over 6 variables → 6 instances;
        // exit rule: no free variables → 1 instance.
        assert_eq!(labels.len(), 7);
        assert!(labels.iter().all(|l| l.instance.head == goal));
        // Exactly one label per rule_index 1 (the exit rule).
        assert_eq!(labels.iter().filter(|l| l.rule_index == 1).count(), 1);
    }

    #[test]
    fn labels_for_repeated_variable_head() {
        let ctx = LabelContext::new(&tc());
        let goal = canonical_atom("p", &[1, 1]);
        let labels = ctx.labels_for(&goal);
        assert_eq!(labels.len(), 7);
        for l in &labels {
            assert_eq!(l.instance.head, goal);
        }
    }

    #[test]
    fn head_unification_can_fail_for_incompatible_rules() {
        // Rule with repeated head variable only matches diagonal atoms.
        let p = parse_program("q(X, X) :- e(X). q(X, Y) :- f(X, Y).").unwrap();
        let ctx = LabelContext::new(&p);
        let diag = canonical_atom("q", &[1, 1]);
        let off = canonical_atom("q", &[1, 2]);
        assert_eq!(ctx.labels_for(&diag).len(), 2);
        assert_eq!(ctx.labels_for(&off).len(), 1);
    }

    #[test]
    fn idb_and_edb_body_atoms_are_separated() {
        let ctx = LabelContext::new(&tc());
        let goal = canonical_atom("p", &[1, 2]);
        let label = ctx
            .labels_for(&goal)
            .into_iter()
            .find(|l| l.rule_index == 0)
            .unwrap();
        assert_eq!(ctx.idb_body_atoms(&label.instance).len(), 1);
        assert_eq!(ctx.edb_body_atoms(&label.instance).len(), 1);
    }

    #[test]
    fn label_display_mentions_rule_and_head() {
        let ctx = LabelContext::new(&tc());
        let goal = canonical_atom("p", &[1, 2]);
        let label = &ctx.labels_for(&goal)[0];
        let text = label.to_string();
        assert!(text.contains("p(x1, x2)"));
        assert!(text.contains(":-"));
    }

    #[test]
    fn total_label_estimate_is_exponential_in_rule_variables() {
        let ctx = LabelContext::new(&tc());
        // 6 variables; recursive rule has 3 vars (216), exit rule 2 (36).
        assert_eq!(ctx.total_label_estimate(), 216 + 36);
    }
}
