//! The proof-tree automaton `A_ptrees(Q, Π)` of Proposition 5.9.
//!
//! States are the IDB atoms over `var(Π)`; the start states are the goal
//! atoms `Q(s)`; reading a label `(α, ρ)` from state α sends the children to
//! the IDB atoms of ρ's body (in order), and rule instances whose body is
//! all-EDB allow the node to be a leaf (the paper's `accept` state becomes
//! the empty child tuple under this crate's leaf convention).
//!
//! The construction is *reachable-state only*: atoms that cannot appear in
//! any proof tree with a goal-atom root are never materialised.  The full
//! state space is exponential in the size of Π, which is exactly the
//! automaton-size blowup behind the 2EXPTIME upper bound of Theorem 5.12;
//! the [`PtreesAutomaton::stats`] report lets the benches measure how much
//! of it is actually reachable on the paper's program families.

use std::collections::{BTreeMap, VecDeque};

use automata::tree::TreeAutomaton;
use datalog::atom::{Atom, Pred};
use datalog::program::Program;

use crate::labels::{LabelContext, ProofLabel};

/// The proof-tree automaton together with its state dictionary.
pub struct PtreesAutomaton {
    /// The underlying tree automaton over proof labels.
    pub automaton: TreeAutomaton<ProofLabel>,
    /// The IDB atom corresponding to each automaton state.
    pub state_atoms: Vec<Atom>,
    /// The label-enumeration context (shared with the CQ automata so both
    /// use the same alphabet).
    pub context: LabelContext,
}

/// Size statistics of a constructed automaton.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AutomatonStats {
    /// Number of states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
}

impl PtreesAutomaton {
    /// Build `A_ptrees(goal, program)`.
    pub fn build(program: &Program, goal: Pred) -> Self {
        let context = LabelContext::new(program);
        let mut automaton = TreeAutomaton::new(0);
        let mut state_of: BTreeMap<Atom, usize> = BTreeMap::new();
        let mut state_atoms: Vec<Atom> = Vec::new();
        let mut queue: VecDeque<Atom> = VecDeque::new();

        let intern = |atom: Atom,
                      automaton: &mut TreeAutomaton<ProofLabel>,
                      state_of: &mut BTreeMap<Atom, usize>,
                      state_atoms: &mut Vec<Atom>,
                      queue: &mut VecDeque<Atom>|
         -> usize {
            if let Some(&id) = state_of.get(&atom) {
                return id;
            }
            let id = automaton.add_state();
            state_of.insert(atom.clone(), id);
            state_atoms.push(atom.clone());
            queue.push_back(atom);
            id
        };

        for goal_atom in context.goal_atoms(goal) {
            let id = intern(
                goal_atom,
                &mut automaton,
                &mut state_of,
                &mut state_atoms,
                &mut queue,
            );
            automaton.add_initial(id);
        }

        while let Some(atom) = queue.pop_front() {
            let state = state_of[&atom];
            for label in context.labels_for(&atom) {
                let children: Vec<usize> = context
                    .idb_body_atoms(&label.instance)
                    .into_iter()
                    .map(|(_, child_atom)| {
                        intern(
                            child_atom.clone(),
                            &mut automaton,
                            &mut state_of,
                            &mut state_atoms,
                            &mut queue,
                        )
                    })
                    .collect();
                automaton.add_transition(state, label, children);
            }
        }

        PtreesAutomaton {
            automaton,
            state_atoms,
            context,
        }
    }

    /// Size statistics.
    pub fn stats(&self) -> AutomatonStats {
        AutomatonStats {
            states: self.automaton.state_count(),
            transitions: self.automaton.transition_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::canonical_atom;
    use automata::tree::emptiness::{find_witness, is_empty};
    use datalog::generate::{transitive_closure, transitive_closure_nonlinear};
    use datalog::parser::parse_program;

    use crate::proof_tree::is_valid_proof_tree;

    #[test]
    fn tc_automaton_accepts_exactly_proof_trees() {
        let program = transitive_closure("e", "ep");
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        // 36 goal atoms are initial; every p-atom over var(Π) is reachable.
        assert_eq!(ptrees.automaton.initial().len(), 36);
        assert_eq!(ptrees.automaton.state_count(), 36);
        // Each state has 7 outgoing labels (6 recursive instances + 1 exit).
        assert_eq!(ptrees.automaton.transition_count(), 36 * 7);

        // The language is nonempty and a witness is a valid proof tree.
        assert!(!is_empty(&ptrees.automaton));
        let witness = find_witness(&ptrees.automaton).unwrap();
        assert!(is_valid_proof_tree(&program, &witness));
        assert_eq!(
            witness.size(),
            1,
            "minimal proof tree is a single exit node"
        );
    }

    #[test]
    fn accepted_trees_have_matching_goals_along_edges() {
        let program = transitive_closure("e", "ep");
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        // Take any accepted tree of height ≥ 2 by unfolding the witness by
        // hand: root uses a recursive label whose IDB child equals the
        // child's goal.
        let ctx = &ptrees.context;
        let root_goal = canonical_atom("p", &[1, 2]);
        let root_label = ctx
            .labels_for(&root_goal)
            .into_iter()
            .find(|l| l.rule_index == 0)
            .unwrap();
        let child_goal = ctx.idb_body_atoms(&root_label.instance)[0].1.clone();
        let child_label = ctx
            .labels_for(&child_goal)
            .into_iter()
            .find(|l| l.rule_index == 1)
            .unwrap();
        let tree =
            automata::tree::Tree::node(root_label, vec![automata::tree::Tree::leaf(child_label)]);
        assert!(ptrees.automaton.accepts(&tree));
        assert!(is_valid_proof_tree(&program, &tree));

        // Mutilate the child goal: the automaton must reject.
        let wrong_child = ctx
            .labels_for(&canonical_atom("p", &[5, 5]))
            .into_iter()
            .find(|l| l.rule_index == 1)
            .unwrap();
        let root_label2 = ctx
            .labels_for(&root_goal)
            .into_iter()
            .find(|l| l.rule_index == 0)
            .unwrap();
        let bad =
            automata::tree::Tree::node(root_label2, vec![automata::tree::Tree::leaf(wrong_child)]);
        assert!(!ptrees.automaton.accepts(&bad));
    }

    #[test]
    fn nonlinear_program_has_binary_transitions() {
        let program = transitive_closure_nonlinear("e");
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        let has_binary = ptrees
            .automaton
            .transitions()
            .any(|(_, _, tuple)| tuple.len() == 2);
        assert!(has_binary);
        assert!(!is_empty(&ptrees.automaton));
    }

    #[test]
    fn program_without_exit_rule_has_empty_language() {
        let program = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).").unwrap();
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        assert!(is_empty(&ptrees.automaton));
    }

    #[test]
    fn zero_ary_goal_is_supported() {
        let program = parse_program(
            "c :- p(X, Y), start(X).\n\
             p(X, Y) :- e(X, Z), p(Z, Y).\n\
             p(X, Y) :- e(X, Y).",
        )
        .unwrap();
        let ptrees = PtreesAutomaton::build(&program, Pred::new("c"));
        assert_eq!(ptrees.automaton.initial().len(), 1);
        assert!(!is_empty(&ptrees.automaton));
        let witness = find_witness(&ptrees.automaton).unwrap();
        assert!(is_valid_proof_tree(&program, &witness));
        assert_eq!(witness.height(), 2);
    }

    #[test]
    fn stats_report_states_and_transitions() {
        let program = transitive_closure("e", "ep");
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        let stats = ptrees.stats();
        assert_eq!(stats.states, 36);
        assert_eq!(stats.transitions, 252);
    }
}
