//! A shared, process-wide memo for containment decisions.
//!
//! Every decision procedure in this crate bottoms out in one of three pure
//! questions:
//!
//! 1. `Π(goal) ⊆ Θ`? — the automata-backed decision of
//!    [`crate::containment::datalog_contained_in_ucq_with`] (expensive:
//!    builds proof-tree automata and runs tree/word containment);
//! 2. `θ ⊆ ψ`? — conjunctive-query containment (a homomorphism search,
//!    issued in quadratic volleys by the `optimize` passes);
//! 3. `θ ⊆ Π(goal)`? — the canonical-database check of
//!    [`crate::cq_in_datalog`].
//!
//! All three are functions of the *structure* of their inputs up to
//! variable renaming, body reordering, and (for unions) disjunct order —
//! exactly what the canonical cache keys of [`cq::canonical`] quotient out.
//! The [`DecisionCache`] memoises all three maps under those keys, so
//! `bounded::find_bound` probing successive depths, `equivalence` deciding
//! both directions, and every `optimize` pass (`minimize_rule_bodies`,
//! `remove_subsumed_rules`, `eliminate_recursion`) share one pool of
//! already-decided containments instead of re-deciding them.
//!
//! The cache is **on by default** (see `DecisionOptions::use_cache`); the
//! uncached path is retained as the reference oracle and the two are locked
//! differentially in `tests/containment_cache_differential.rs`.  Caching a
//! decision is sound because programs/queries with equal keys are
//! semantically identical: a stored verdict — and a stored counterexample
//! database — is valid for every input that maps to the same key.
//!
//! [`CacheStats`] exposes hit/miss counts and the product-pair work spent
//! (on misses) versus recalled (on hits), which the benches report.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use cq::canonical::{CqKey, UcqKey};
use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::Pred;
use datalog::program::Program;

use crate::containment::{ContainmentResult, DecisionOptions};

/// Structural cache key of a Datalog program: the canonical key of each
/// rule (read as a conjunctive query), in rule order.  Two programs with
/// equal keys have identical rules up to variable renaming and body-atom
/// order, hence identical semantics on every database.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramKey {
    rules: Vec<CqKey>,
}

impl ProgramKey {
    /// Compute the key of a program (one canonicalisation per rule).
    pub fn of(program: &Program) -> ProgramKey {
        ProgramKey {
            rules: program
                .rules()
                .iter()
                .map(|rule| CqKey::of(&ConjunctiveQuery::from_rule(rule)))
                .collect(),
        }
    }
}

/// Cache key of a full `Π(goal) ⊆ Θ` decision: the interned program
/// structure, the goal, the query key, and every option that can change the
/// outcome or its instrumentation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    program: ProgramKey,
    goal: Pred,
    query: UcqKey,
    allow_word_path: bool,
    antichain: bool,
    max_pairs: Option<usize>,
}

impl DecisionKey {
    /// Build the key for a decision call.
    pub fn new(program: &Program, goal: Pred, ucq: &Ucq, options: DecisionOptions) -> DecisionKey {
        DecisionKey {
            program: ProgramKey::of(program),
            goal,
            query: UcqKey::of(ucq),
            allow_word_path: options.allow_word_path,
            antichain: options.antichain,
            max_pairs: options.max_pairs,
        }
    }
}

/// Aggregate cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populated the cache).
    pub misses: u64,
    /// Product pairs explored by full decisions computed on misses.
    pub pairs_explored: u64,
    /// Product pairs recalled on hits — work the cache avoided re-doing.
    pub pairs_saved: u64,
}

/// Entry counts of the three memo maps, for observability surfaces (the
/// server's `stats` verb) that report cache occupancy next to hit rates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSizes {
    /// Memoised full `Π(goal) ⊆ Θ` decisions.
    pub decisions: usize,
    /// Memoised `θ ⊆ ψ` conjunctive-query pairs.
    pub cq_pairs: usize,
    /// Memoised `θ ⊆ Π(goal)` canonical-database checks.
    pub cq_in_program: usize,
}

impl CacheSizes {
    /// Total entries across the three maps.
    pub fn total(&self) -> usize {
        self.decisions + self.cq_pairs + self.cq_in_program
    }
}

#[derive(Default)]
struct Inner {
    decisions: HashMap<DecisionKey, ContainmentResult>,
    /// `θ → ψ → (θ ⊆ ψ)`.  Nested so hit-path lookups borrow the keys
    /// instead of cloning them into a composite key.
    cq_pairs: HashMap<CqKey, HashMap<CqKey, bool>>,
    /// `Π → goal → θ → (θ ⊆ Π(goal))`, nested for the same reason — the
    /// program key in particular is expensive to clone per lookup.
    cq_in_program: HashMap<ProgramKey, HashMap<Pred, HashMap<CqKey, bool>>>,
    stats: CacheStats,
}

/// The shared decision memo.  See the module docs.
#[derive(Default)]
pub struct DecisionCache {
    inner: Mutex<Inner>,
}

impl DecisionCache {
    /// A fresh, empty cache (the tests use private caches; production code
    /// shares [`DecisionCache::global`]).
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// The process-wide cache every decision procedure shares by default.
    pub fn global() -> &'static DecisionCache {
        static GLOBAL: OnceLock<DecisionCache> = OnceLock::new();
        GLOBAL.get_or_init(DecisionCache::new)
    }

    /// A snapshot of the statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// Number of memoised entries across all three maps.
    pub fn len(&self) -> usize {
        self.sizes().total()
    }

    /// Per-map entry counts (decisions, CQ pairs, canonical-database
    /// checks) — the occupancy breakdown the server's `stats` verb reports.
    pub fn sizes(&self) -> CacheSizes {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheSizes {
            decisions: inner.decisions.len(),
            cq_pairs: inner.cq_pairs.values().map(HashMap::len).sum(),
            cq_in_program: inner
                .cq_in_program
                .values()
                .flat_map(HashMap::values)
                .map(HashMap::len)
                .sum(),
        }
    }

    /// True if nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoised entry and reset the statistics.
    pub fn clear(&self) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = Inner::default();
    }

    /// Recall a full decision.  Counts a hit or a miss.
    pub fn lookup_decision(&self, key: &DecisionKey) -> Option<ContainmentResult> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.decisions.get(key).cloned() {
            Some(result) => {
                inner.stats.hits += 1;
                inner.stats.pairs_saved += result.stats.explored as u64;
                Some(result)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Store a freshly computed full decision.
    pub fn store_decision(&self, key: DecisionKey, result: &ContainmentResult) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.stats.pairs_explored += result.stats.explored as u64;
        inner.decisions.insert(key, result.clone());
    }

    /// Memoised `θ ⊆ ψ` (conjunctive-query containment).  Returns the
    /// verdict and whether it was a cache hit.
    pub fn cq_contained(&self, theta: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> (bool, bool) {
        self.cq_contained_keyed(&CqKey::of(theta), &CqKey::of(psi))
    }

    /// As [`DecisionCache::cq_contained`], but keyed on precomputed
    /// [`CqKey`]s so quadratic passes canonicalise each query once.
    pub fn cq_contained_keyed(&self, theta: &CqKey, psi: &CqKey) -> (bool, bool) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(&verdict) = inner.cq_pairs.get(theta).and_then(|by_psi| by_psi.get(psi)) {
                inner.stats.hits += 1;
                return (verdict, true);
            }
            inner.stats.misses += 1;
        }
        // Compute outside the lock: containment is invariant under
        // canonicalisation, so the canonical forms inside the keys suffice.
        let verdict = cq::containment::cq_contained_in(theta.as_query(), psi.as_query());
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .cq_pairs
            .entry(theta.clone())
            .or_default()
            .insert(psi.clone(), verdict);
        (verdict, false)
    }

    /// Memoised `θ ⊆ Π(goal)` (canonical-database check).  The caller
    /// supplies the compute path so this module does not depend on the
    /// evaluation engine; returns the verdict and whether it was a hit.
    pub fn cq_in_datalog_cached(
        &self,
        program: &ProgramKey,
        goal: Pred,
        theta: &CqKey,
        compute: impl FnOnce() -> bool,
    ) -> (bool, bool) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(&verdict) = inner
                .cq_in_program
                .get(program)
                .and_then(|by_goal| by_goal.get(&goal))
                .and_then(|by_theta| by_theta.get(theta))
            {
                inner.stats.hits += 1;
                return (verdict, true);
            }
            inner.stats.misses += 1;
        }
        let verdict = compute();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .cq_in_program
            .entry(program.clone())
            .or_default()
            .entry(goal)
            .or_default()
            .insert(theta.clone(), verdict);
        (verdict, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::parser::parse_program;

    fn cq(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn program_keys_identify_renamed_programs() {
        let p1 = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).").unwrap();
        let p2 = parse_program("p(A, B) :- e(A, C), p(C, B).\np(A, B) :- e(A, B).").unwrap();
        let p3 = parse_program("p(X, Y) :- e(X, Y).").unwrap();
        assert_eq!(ProgramKey::of(&p1), ProgramKey::of(&p2));
        assert_ne!(ProgramKey::of(&p1), ProgramKey::of(&p3));
    }

    #[test]
    fn cq_pair_cache_hits_on_renamed_queries() {
        let cache = DecisionCache::new();
        let a = cq("q(X) :- e(X, Y), e(Y, Z).");
        let b = cq("q(X) :- e(X, Y).");
        let (first, hit_first) = cache.cq_contained(&a, &b);
        assert!(first);
        assert!(!hit_first);
        // A renaming of the same pair must hit.
        let a2 = cq("q(A) :- e(A, B), e(B, C).");
        let (second, hit_second) = cache.cq_contained(&a2, &b);
        assert!(second);
        assert!(hit_second);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.sizes(),
            CacheSizes {
                decisions: 0,
                cq_pairs: 1,
                cq_in_program: 0
            }
        );
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cq_in_datalog_cache_computes_once() {
        let cache = DecisionCache::new();
        let program = parse_program("p(X, Y) :- e(X, Y).").unwrap();
        let key = ProgramKey::of(&program);
        let theta = CqKey::of(&cq("q(X, Y) :- e(X, Y)."));
        let mut computed = 0;
        for _ in 0..3 {
            let (verdict, _) = cache.cq_in_datalog_cached(&key, Pred::new("p"), &theta, || {
                computed += 1;
                true
            });
            assert!(verdict);
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.stats().hits, 2);
    }
}
