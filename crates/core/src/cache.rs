//! A shared, process-wide memo for containment decisions.
//!
//! Every decision procedure in this crate bottoms out in one of three pure
//! questions:
//!
//! 1. `Π(goal) ⊆ Θ`? — the automata-backed decision of
//!    [`crate::containment::datalog_contained_in_ucq_with`] (expensive:
//!    builds proof-tree automata and runs tree/word containment);
//! 2. `θ ⊆ ψ`? — conjunctive-query containment (a homomorphism search,
//!    issued in quadratic volleys by the `optimize` passes);
//! 3. `θ ⊆ Π(goal)`? — the canonical-database check of
//!    [`crate::cq_in_datalog`].
//!
//! All three are functions of the *structure* of their inputs up to
//! variable renaming, body reordering, and (for unions) disjunct order —
//! exactly what the canonical cache keys of [`cq::canonical`] quotient out.
//! The [`DecisionCache`] memoises all three maps under those keys, so
//! `bounded::find_bound` probing successive depths, `equivalence` deciding
//! both directions, and every `optimize` pass (`minimize_rule_bodies`,
//! `remove_subsumed_rules`, `eliminate_recursion`) share one pool of
//! already-decided containments instead of re-deciding them.
//!
//! The cache is **on by default** (see `DecisionOptions::use_cache`); the
//! uncached path is retained as the reference oracle and the two are locked
//! differentially in `tests/containment_cache_differential.rs`.  Caching a
//! decision is sound because programs/queries with equal keys are
//! semantically identical: a stored verdict — and a stored counterexample
//! database — is valid for every input that maps to the same key.
//!
//! # Bounded operation
//!
//! A long-running server answers an unbounded keyspace of (program, goal,
//! query, options) requests, so an unbounded memo eventually exhausts
//! memory.  [`CacheLimits`] caps each of the three segments independently;
//! when a segment overflows its cap, a **cost-aware LRU** sweep evicts a
//! batch of entries: victims are drawn from the least-recently-used half of
//! the overflowing segment, largest witness payloads first (a cached
//! counterexample — proof tree, expansion, canonical database — dwarfs a
//! boolean verdict, so it is the memory that must go first).  Eviction
//! never changes a verdict — an evicted entry is simply recomputed on the
//! next miss — which `tests/cache_eviction_differential.rs` locks over
//! generated instances.  [`CacheStats`] counts evictions per segment.
//!
//! [`CacheStats`] also exposes hit/miss counts and the product-pair work
//! spent (on misses) versus recalled (on hits), which the benches report.
//! The whole cache can be snapshotted to a versioned byte format and
//! reloaded (warm start) — see [`crate::snapshot`].

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use cq::canonical::{CqKey, UcqKey};
use cq::{ConjunctiveQuery, Ucq};
use datalog::atom::Pred;
use datalog::program::Program;

use crate::containment::{ContainmentResult, DecisionOptions};

/// Structural cache key of a Datalog program: the canonical key of each
/// rule (read as a conjunctive query), in rule order.  Two programs with
/// equal keys have identical rules up to variable renaming and body-atom
/// order, hence identical semantics on every database.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramKey {
    rules: Vec<CqKey>,
}

impl ProgramKey {
    /// Compute the key of a program (one canonicalisation per rule).
    pub fn of(program: &Program) -> ProgramKey {
        ProgramKey {
            rules: program
                .rules()
                .iter()
                .map(|rule| CqKey::of(&ConjunctiveQuery::from_rule(rule)))
                .collect(),
        }
    }

    /// Rebuild a key from per-rule keys (the snapshot decoder, and any
    /// future sharding layer that routes by `ProgramKey`, come through
    /// here).
    pub fn from_rule_keys(rules: Vec<CqKey>) -> ProgramKey {
        ProgramKey { rules }
    }

    /// The per-rule keys, in rule order.
    pub fn rule_keys(&self) -> &[CqKey] {
        &self.rules
    }
}

/// Cache key of a full `Π(goal) ⊆ Θ` decision: the interned program
/// structure, the goal, the query key, and every option that can change the
/// outcome or its instrumentation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    pub(crate) program: ProgramKey,
    pub(crate) goal: Pred,
    pub(crate) query: UcqKey,
    pub(crate) allow_word_path: bool,
    pub(crate) antichain: bool,
    pub(crate) max_pairs: Option<usize>,
}

impl DecisionKey {
    /// Build the key for a decision call.  `CacheLimits`, the unfolding
    /// budget, and the evaluation strategy are deliberately **not** part of
    /// the key: none can change a verdict — the limits only govern whether
    /// (and how cheaply) it is remembered, and every strategy computes the
    /// same goal relation (the strategy differential suite locks this), so
    /// verdicts are shared across strategies.
    pub fn new(program: &Program, goal: Pred, ucq: &Ucq, options: DecisionOptions) -> DecisionKey {
        DecisionKey {
            program: ProgramKey::of(program),
            goal,
            query: UcqKey::of(ucq),
            allow_word_path: options.allow_word_path,
            antichain: options.antichain,
            max_pairs: options.max_pairs,
        }
    }
}

/// Per-segment capacity limits of a [`DecisionCache`].  `None` means
/// unbounded (the default, and the pre-eviction behaviour); `Some(0)` is
/// legal and disables memoisation for that segment (every store is evicted
/// straight away).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Cap on memoised full `Π(goal) ⊆ Θ` decisions.
    pub max_decisions: Option<usize>,
    /// Cap on memoised `θ ⊆ ψ` conjunctive-query pairs.
    pub max_cq_pairs: Option<usize>,
    /// Cap on memoised `θ ⊆ Π(goal)` canonical-database checks.
    pub max_cq_in_program: Option<usize>,
}

impl CacheLimits {
    /// No caps anywhere (the default).
    pub fn unbounded() -> CacheLimits {
        CacheLimits::default()
    }

    /// The same cap on every segment — the shape the differential and soak
    /// suites use.
    pub fn uniform(cap: usize) -> CacheLimits {
        CacheLimits {
            max_decisions: Some(cap),
            max_cq_pairs: Some(cap),
            max_cq_in_program: Some(cap),
        }
    }
}

/// Aggregate cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populated the cache).
    pub misses: u64,
    /// Product pairs explored by full decisions computed on misses.
    pub pairs_explored: u64,
    /// Product pairs recalled on hits — work the cache avoided re-doing.
    pub pairs_saved: u64,
    /// Full decisions evicted to stay within `max_decisions`.
    pub evicted_decisions: u64,
    /// CQ-pair verdicts evicted to stay within `max_cq_pairs`.
    pub evicted_cq_pairs: u64,
    /// Canonical-database verdicts evicted to stay within
    /// `max_cq_in_program`.
    pub evicted_cq_in_program: u64,
}

impl CacheStats {
    /// Total evictions across the three segments.
    pub fn evictions(&self) -> u64 {
        self.evicted_decisions + self.evicted_cq_pairs + self.evicted_cq_in_program
    }
}

/// Entry counts of the three memo maps, for observability surfaces (the
/// server's `stats` verb) that report cache occupancy next to hit rates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSizes {
    /// Memoised full `Π(goal) ⊆ Θ` decisions.
    pub decisions: usize,
    /// Memoised `θ ⊆ ψ` conjunctive-query pairs.
    pub cq_pairs: usize,
    /// Memoised `θ ⊆ Π(goal)` canonical-database checks.
    pub cq_in_program: usize,
}

impl CacheSizes {
    /// Total entries across the three maps.
    pub fn total(&self) -> usize {
        self.decisions + self.cq_pairs + self.cq_in_program
    }
}

/// One memoised value plus the bookkeeping eviction needs: a recency stamp
/// (a logical tick, bumped on every store and every hit) and a payload-size
/// estimate used to pick large witnesses first.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
    cost: u32,
}

/// Payload-size estimate of a stored decision, in "structure nodes".  A
/// bare verdict costs 1; a counterexample adds its proof-tree nodes, its
/// expansion atoms, and its canonical-database facts — the parts whose
/// memory footprint dominates the cache.
fn witness_cost(result: &ContainmentResult) -> u32 {
    let mut cost = 1usize;
    if let Some(cex) = &result.counterexample {
        cost += cex.proof_tree.size() + cex.expansion.body.len() + cex.database.len();
    }
    cost.min(u32::MAX as usize) as u32
}

#[derive(Default)]
struct Inner {
    decisions: HashMap<DecisionKey, Entry<ContainmentResult>>,
    /// `θ → ψ → (θ ⊆ ψ)`.  Nested so hit-path lookups borrow the keys
    /// instead of cloning them into a composite key.
    cq_pairs: HashMap<CqKey, HashMap<CqKey, Entry<bool>>>,
    /// `Π → goal → θ → (θ ⊆ Π(goal))`, nested for the same reason — the
    /// program key in particular is expensive to clone per lookup.
    cq_in_program: HashMap<ProgramKey, HashMap<Pred, HashMap<CqKey, Entry<bool>>>>,
    stats: CacheStats,
    limits: CacheLimits,
    /// Logical clock for LRU recency (monotone per cache).
    tick: u64,
}

/// When a segment overflows its cap, evict down to `cap - cap/8` in one
/// batch (bounded below by one retained entry for any nonzero cap — a cap
/// of 1 must hold one entry, only `Some(0)` means "cache nothing"), so the
/// O(n log n) victim scan amortises to O(log n) per store instead of
/// running on every insert at the boundary.
fn evict_target(cap: usize) -> usize {
    if cap == 0 {
        0
    } else {
        (cap - (cap / 8).max(1).min(cap)).max(1)
    }
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Enforce the decision-segment cap.  Victims come from the
    /// least-recently-used half of the candidates, **largest witness
    /// payloads first** — recency protects the hot set, cost decides among
    /// the cold.
    ///
    /// Recency ticks are unique per entry (one logical clock per cache),
    /// so the sweep selects victims as a set of ticks and removes them
    /// with one `retain` pass — no key is ever cloned for bookkeeping.
    fn enforce_decisions(&mut self) {
        let Some(cap) = self.limits.max_decisions else {
            return;
        };
        if self.decisions.len() <= cap {
            return;
        }
        let need = self.decisions.len() - evict_target(cap);
        let mut candidates: Vec<(u64, u32)> = self
            .decisions
            .values()
            .map(|entry| (entry.last_used, entry.cost))
            .collect();
        candidates.sort_by_key(|(last_used, _)| *last_used);
        // Keep only the coldest half (but at least `need`) as the victim
        // pool, then order that pool by descending cost.
        let pool = need.max(candidates.len() / 2).min(candidates.len());
        candidates.truncate(pool);
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let victims: std::collections::HashSet<u64> =
            candidates.into_iter().take(need).map(|(t, _)| t).collect();
        self.decisions
            .retain(|_, entry| !victims.contains(&entry.last_used));
        self.stats.evicted_decisions += victims.len() as u64;
    }

    /// The `need` oldest recency ticks of `ticks` (pure LRU victim set).
    fn oldest(mut ticks: Vec<u64>, need: usize) -> std::collections::HashSet<u64> {
        let need = need.min(ticks.len());
        let pivot = need.saturating_sub(1).min(ticks.len().saturating_sub(1));
        ticks.select_nth_unstable(pivot);
        ticks.truncate(need);
        ticks.into_iter().collect()
    }

    /// Enforce the CQ-pair cap (pure LRU: all entries cost the same).
    fn enforce_cq_pairs(&mut self) {
        let Some(cap) = self.limits.max_cq_pairs else {
            return;
        };
        let len: usize = self.cq_pairs.values().map(HashMap::len).sum();
        if len <= cap {
            return;
        }
        let need = len - evict_target(cap);
        let victims = Inner::oldest(
            self.cq_pairs
                .values()
                .flat_map(HashMap::values)
                .map(|entry| entry.last_used)
                .collect(),
            need,
        );
        self.cq_pairs.retain(|_, by_psi| {
            by_psi.retain(|_, entry| !victims.contains(&entry.last_used));
            !by_psi.is_empty()
        });
        self.stats.evicted_cq_pairs += victims.len() as u64;
    }

    /// Enforce the canonical-database cap (pure LRU).
    fn enforce_cq_in_program(&mut self) {
        let Some(cap) = self.limits.max_cq_in_program else {
            return;
        };
        let len: usize = self
            .cq_in_program
            .values()
            .flat_map(HashMap::values)
            .map(HashMap::len)
            .sum();
        if len <= cap {
            return;
        }
        let need = len - evict_target(cap);
        let victims = Inner::oldest(
            self.cq_in_program
                .values()
                .flat_map(HashMap::values)
                .flat_map(HashMap::values)
                .map(|entry| entry.last_used)
                .collect(),
            need,
        );
        self.cq_in_program.retain(|_, by_goal| {
            by_goal.retain(|_, by_theta| {
                by_theta.retain(|_, entry| !victims.contains(&entry.last_used));
                !by_theta.is_empty()
            });
            !by_goal.is_empty()
        });
        self.stats.evicted_cq_in_program += victims.len() as u64;
    }

    fn sizes(&self) -> CacheSizes {
        CacheSizes {
            decisions: self.decisions.len(),
            cq_pairs: self.cq_pairs.values().map(HashMap::len).sum(),
            cq_in_program: self
                .cq_in_program
                .values()
                .flat_map(HashMap::values)
                .map(HashMap::len)
                .sum(),
        }
    }
}

/// The shared decision memo.  See the module docs.
#[derive(Default)]
pub struct DecisionCache {
    inner: Mutex<Inner>,
}

impl DecisionCache {
    /// A fresh, empty, unbounded cache (the tests use private caches;
    /// production code shares [`DecisionCache::global`]).
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// A fresh cache with the given limits.
    pub fn with_limits(limits: CacheLimits) -> DecisionCache {
        let cache = DecisionCache::new();
        cache.set_limits(limits);
        cache
    }

    /// The process-wide cache every decision procedure shares by default.
    ///
    /// It has no scoping: state leaks across tests in one binary, which is
    /// why the differential suites run on private caches and why [`clear`]
    /// exists as the reset hook (also surfaced as the server's
    /// `clear_cache` admin verb).
    ///
    /// ```
    /// use nonrec_equivalence::cache::DecisionCache;
    ///
    /// let cache = DecisionCache::global();
    /// // The same instance every time: stats accumulate process-wide.
    /// assert!(std::ptr::eq(cache, DecisionCache::global()));
    /// let sizes = cache.sizes();
    /// assert!(sizes.decisions <= sizes.total());
    /// ```
    ///
    /// [`clear`]: DecisionCache::clear
    pub fn global() -> &'static DecisionCache {
        static GLOBAL: OnceLock<DecisionCache> = OnceLock::new();
        GLOBAL.get_or_init(DecisionCache::new)
    }

    /// A snapshot of the statistics.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// The configured per-segment limits.
    pub fn limits(&self) -> CacheLimits {
        self.lock().limits
    }

    /// Install new per-segment limits and enforce them immediately:
    /// overflowing segments evict down right away (counted in the eviction
    /// stats), so a `cache_limits` admin call bounds memory without waiting
    /// for the next store.
    pub fn set_limits(&self, limits: CacheLimits) {
        let mut inner = self.lock();
        if inner.limits == limits {
            return;
        }
        inner.limits = limits;
        inner.enforce_decisions();
        inner.enforce_cq_pairs();
        inner.enforce_cq_in_program();
    }

    /// Number of memoised entries across all three maps.
    pub fn len(&self) -> usize {
        self.sizes().total()
    }

    /// Per-map entry counts (decisions, CQ pairs, canonical-database
    /// checks) — the occupancy breakdown the server's `stats` verb reports.
    pub fn sizes(&self) -> CacheSizes {
        self.lock().sizes()
    }

    /// True if nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoised entry and reset the statistics, reporting how
    /// many entries each segment held.  Configured limits survive.
    ///
    /// This is the reset hook for [`DecisionCache::global`]: test suites
    /// call it to undo cross-test pollution, and the server's `clear_cache`
    /// admin verb reports the returned drop counts on the wire.
    pub fn clear(&self) -> CacheSizes {
        let mut inner = self.lock();
        let dropped = inner.sizes();
        let limits = inner.limits;
        *inner = Inner {
            limits,
            ..Inner::default()
        };
        dropped
    }

    /// Recall a full decision.  Counts a hit or a miss; a hit refreshes the
    /// entry's LRU recency.
    pub fn lookup_decision(&self, key: &DecisionKey) -> Option<ContainmentResult> {
        let mut inner = self.lock();
        let tick = inner.next_tick();
        match inner.decisions.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let result = entry.value.clone();
                inner.stats.hits += 1;
                inner.stats.pairs_saved += result.stats.explored as u64;
                Some(result)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Count a recall that a layer **above** this cache answered from its
    /// own memo of a decision that lives here (the server's text-level
    /// response memo fronts this cache and answers byte-identical repeats
    /// without re-canonicalising the key).  The decision was genuinely
    /// recalled rather than recomputed, so it is a hit in every sense this
    /// counter promises — recording it here keeps hit-rate observability
    /// truthful regardless of which layer short-circuited the work.
    pub fn record_memoised_hit(&self) {
        self.lock().stats.hits += 1;
    }

    /// Store a freshly computed full decision, evicting if the segment
    /// overflows its cap.
    pub fn store_decision(&self, key: DecisionKey, result: &ContainmentResult) {
        let mut inner = self.lock();
        let tick = inner.next_tick();
        inner.stats.pairs_explored += result.stats.explored as u64;
        inner.decisions.insert(
            key,
            Entry {
                cost: witness_cost(result),
                value: result.clone(),
                last_used: tick,
            },
        );
        inner.enforce_decisions();
    }

    /// Memoised `θ ⊆ ψ` (conjunctive-query containment).  Returns the
    /// verdict and whether it was a cache hit.
    pub fn cq_contained(&self, theta: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> (bool, bool) {
        self.cq_contained_keyed(&CqKey::of(theta), &CqKey::of(psi))
    }

    /// As [`DecisionCache::cq_contained`], but keyed on precomputed
    /// [`CqKey`]s so quadratic passes canonicalise each query once.
    pub fn cq_contained_keyed(&self, theta: &CqKey, psi: &CqKey) -> (bool, bool) {
        {
            let mut inner = self.lock();
            let tick = inner.next_tick();
            if let Some(entry) = inner
                .cq_pairs
                .get_mut(theta)
                .and_then(|by_psi| by_psi.get_mut(psi))
            {
                entry.last_used = tick;
                let verdict = entry.value;
                inner.stats.hits += 1;
                return (verdict, true);
            }
            inner.stats.misses += 1;
        }
        // Compute outside the lock: containment is invariant under
        // canonicalisation, so the canonical forms inside the keys suffice.
        let verdict = cq::containment::cq_contained_in(theta.as_query(), psi.as_query());
        let mut inner = self.lock();
        let tick = inner.next_tick();
        inner.cq_pairs.entry(theta.clone()).or_default().insert(
            psi.clone(),
            Entry {
                value: verdict,
                last_used: tick,
                cost: 1,
            },
        );
        inner.enforce_cq_pairs();
        (verdict, false)
    }

    /// Memoised `θ ⊆ Π(goal)` (canonical-database check).  The caller
    /// supplies the compute path so this module does not depend on the
    /// evaluation engine; returns the verdict and whether it was a hit.
    pub fn cq_in_datalog_cached(
        &self,
        program: &ProgramKey,
        goal: Pred,
        theta: &CqKey,
        compute: impl FnOnce() -> bool,
    ) -> (bool, bool) {
        {
            let mut inner = self.lock();
            let tick = inner.next_tick();
            if let Some(entry) = inner
                .cq_in_program
                .get_mut(program)
                .and_then(|by_goal| by_goal.get_mut(&goal))
                .and_then(|by_theta| by_theta.get_mut(theta))
            {
                entry.last_used = tick;
                let verdict = entry.value;
                inner.stats.hits += 1;
                return (verdict, true);
            }
            inner.stats.misses += 1;
        }
        let verdict = compute();
        let mut inner = self.lock();
        let tick = inner.next_tick();
        inner
            .cq_in_program
            .entry(program.clone())
            .or_default()
            .entry(goal)
            .or_default()
            .insert(
                theta.clone(),
                Entry {
                    value: verdict,
                    last_used: tick,
                    cost: 1,
                },
            );
        inner.enforce_cq_in_program();
        (verdict, false)
    }

    /// Every memoised entry of every segment, cloned out — the snapshot
    /// encoder's view.  Order is unspecified (the encoder sorts).
    pub(crate) fn export_entries(&self) -> ExportedEntries {
        let inner = self.lock();
        ExportedEntries {
            decisions: inner
                .decisions
                .iter()
                .map(|(key, entry)| (key.clone(), entry.value.clone()))
                .collect(),
            cq_pairs: inner
                .cq_pairs
                .iter()
                .flat_map(|(theta, by_psi)| {
                    by_psi
                        .iter()
                        .map(move |(psi, entry)| (theta.clone(), psi.clone(), entry.value))
                })
                .collect(),
            cq_in_program: inner
                .cq_in_program
                .iter()
                .flat_map(|(program, by_goal)| {
                    by_goal.iter().flat_map(move |(goal, by_theta)| {
                        by_theta.iter().map(move |(theta, entry)| {
                            (program.clone(), *goal, theta.clone(), entry.value)
                        })
                    })
                })
                .collect(),
        }
    }

    /// Merge decoded snapshot entries into the cache (the loader's commit
    /// step).  Existing entries win — a live entry is at least as fresh as
    /// a persisted one — and limits are enforced afterwards, so loading a
    /// snapshot larger than the caps simply warms the freshest slice.
    /// Hit/miss statistics are untouched: counters describe *this*
    /// process's traffic.  Returns how many entries were actually added.
    pub(crate) fn import_entries(&self, entries: ExportedEntries) -> CacheSizes {
        let mut added = CacheSizes::default();
        let mut inner = self.lock();
        // Imported entries must rank as *older* than everything live: a
        // hot working set being served right now beats whatever a snapshot
        // remembers, and the post-merge enforcement below must shed the
        // snapshot's surplus first — not the live hot set.  Ticks stay
        // unique (the eviction sweeps identify victims by tick): live
        // entries are shifted up by the import budget, and imported
        // entries take the freed range `1..=shift` in snapshot order.
        let shift =
            (entries.decisions.len() + entries.cq_pairs.len() + entries.cq_in_program.len()) as u64;
        if shift > 0 {
            for entry in inner.decisions.values_mut() {
                entry.last_used += shift;
            }
            for by_psi in inner.cq_pairs.values_mut() {
                for entry in by_psi.values_mut() {
                    entry.last_used += shift;
                }
            }
            for by_goal in inner.cq_in_program.values_mut() {
                for by_theta in by_goal.values_mut() {
                    for entry in by_theta.values_mut() {
                        entry.last_used += shift;
                    }
                }
            }
            inner.tick += shift;
        }
        let mut import_tick = 0u64;
        for (key, result) in entries.decisions {
            import_tick += 1;
            if let std::collections::hash_map::Entry::Vacant(slot) = inner.decisions.entry(key) {
                slot.insert(Entry {
                    cost: witness_cost(&result),
                    value: result,
                    last_used: import_tick,
                });
                added.decisions += 1;
            }
        }
        for (theta, psi, verdict) in entries.cq_pairs {
            import_tick += 1;
            if let std::collections::hash_map::Entry::Vacant(slot) =
                inner.cq_pairs.entry(theta).or_default().entry(psi)
            {
                slot.insert(Entry {
                    value: verdict,
                    last_used: import_tick,
                    cost: 1,
                });
                added.cq_pairs += 1;
            }
        }
        for (program, goal, theta, verdict) in entries.cq_in_program {
            import_tick += 1;
            if let std::collections::hash_map::Entry::Vacant(slot) = inner
                .cq_in_program
                .entry(program)
                .or_default()
                .entry(goal)
                .or_default()
                .entry(theta)
            {
                slot.insert(Entry {
                    value: verdict,
                    last_used: import_tick,
                    cost: 1,
                });
                added.cq_in_program += 1;
            }
        }
        inner.enforce_decisions();
        inner.enforce_cq_pairs();
        inner.enforce_cq_in_program();
        added
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The flat, owned view of a cache's entries that travels between the
/// cache and the snapshot codec.
pub(crate) struct ExportedEntries {
    pub(crate) decisions: Vec<(DecisionKey, ContainmentResult)>,
    pub(crate) cq_pairs: Vec<(CqKey, CqKey, bool)>,
    pub(crate) cq_in_program: Vec<(ProgramKey, Pred, CqKey, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::parser::parse_program;

    fn cq(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    #[test]
    fn program_keys_identify_renamed_programs() {
        let p1 = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).").unwrap();
        let p2 = parse_program("p(A, B) :- e(A, C), p(C, B).\np(A, B) :- e(A, B).").unwrap();
        let p3 = parse_program("p(X, Y) :- e(X, Y).").unwrap();
        assert_eq!(ProgramKey::of(&p1), ProgramKey::of(&p2));
        assert_ne!(ProgramKey::of(&p1), ProgramKey::of(&p3));
        let rebuilt = ProgramKey::from_rule_keys(ProgramKey::of(&p1).rule_keys().to_vec());
        assert_eq!(rebuilt, ProgramKey::of(&p1));
    }

    #[test]
    fn cq_pair_cache_hits_on_renamed_queries() {
        let cache = DecisionCache::new();
        let a = cq("q(X) :- e(X, Y), e(Y, Z).");
        let b = cq("q(X) :- e(X, Y).");
        let (first, hit_first) = cache.cq_contained(&a, &b);
        assert!(first);
        assert!(!hit_first);
        // A renaming of the same pair must hit.
        let a2 = cq("q(A) :- e(A, B), e(B, C).");
        let (second, hit_second) = cache.cq_contained(&a2, &b);
        assert!(second);
        assert!(hit_second);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.sizes(),
            CacheSizes {
                decisions: 0,
                cq_pairs: 1,
                cq_in_program: 0
            }
        );
        let dropped = cache.clear();
        assert_eq!(dropped.total(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cq_in_datalog_cache_computes_once() {
        let cache = DecisionCache::new();
        let program = parse_program("p(X, Y) :- e(X, Y).").unwrap();
        let key = ProgramKey::of(&program);
        let theta = CqKey::of(&cq("q(X, Y) :- e(X, Y)."));
        let mut computed = 0;
        for _ in 0..3 {
            let (verdict, _) = cache.cq_in_datalog_cached(&key, Pred::new("p"), &theta, || {
                computed += 1;
                true
            });
            assert!(verdict);
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn bounded_cq_pair_segment_evicts_lru_and_counts() {
        let cache = DecisionCache::with_limits(CacheLimits {
            max_cq_pairs: Some(4),
            ..CacheLimits::default()
        });
        let psi = CqKey::of(&cq("q(X) :- e(X, Y)."));
        let keys: Vec<CqKey> = (2..=8)
            .map(|n| {
                let body = (0..n)
                    .map(|i| format!("e(X{i}, X{})", i + 1))
                    .collect::<Vec<_>>()
                    .join(", ");
                CqKey::of(&cq(&format!("q(X0) :- {body}.")))
            })
            .collect();
        for key in &keys {
            cache.cq_contained_keyed(key, &psi);
        }
        let stats = cache.stats();
        assert!(
            stats.evicted_cq_pairs > 0,
            "cap 4 under 7 inserts must evict"
        );
        assert!(cache.sizes().cq_pairs <= 4);
        // The most recent insert survives; the oldest is gone (a re-query
        // recomputes, i.e. misses).
        let (_, hit_newest) = cache.cq_contained_keyed(keys.last().unwrap(), &psi);
        assert!(hit_newest, "most recent entry must survive eviction");
        let (_, hit_oldest) = cache.cq_contained_keyed(&keys[0], &psi);
        assert!(!hit_oldest, "least recent entry must have been evicted");
    }

    #[test]
    fn recency_protects_hot_entries_across_churn() {
        let cache = DecisionCache::with_limits(CacheLimits {
            max_cq_pairs: Some(8),
            ..CacheLimits::default()
        });
        let psi = CqKey::of(&cq("q(X) :- e(X, Y)."));
        let hot = CqKey::of(&cq("q(X) :- e(X, X)."));
        cache.cq_contained_keyed(&hot, &psi);
        for n in 0..64 {
            let cold = CqKey::of(&cq(&format!("q(X) :- e(X, Y), f{n}(Y, Y).")));
            cache.cq_contained_keyed(&cold, &psi);
            // Touch the hot entry each round so its recency stays fresh.
            let (_, hit) = cache.cq_contained_keyed(&hot, &psi);
            assert!(hit, "hot entry evicted after {n} cold inserts");
        }
        assert!(cache.stats().evicted_cq_pairs > 0);
        assert!(cache.sizes().cq_pairs <= 8);
    }

    #[test]
    fn zero_cap_disables_a_segment() {
        let cache = DecisionCache::with_limits(CacheLimits {
            max_cq_pairs: Some(0),
            ..CacheLimits::default()
        });
        let a = CqKey::of(&cq("q(X) :- e(X, Y)."));
        let b = CqKey::of(&cq("q(X) :- e(X, X)."));
        let (v1, hit1) = cache.cq_contained_keyed(&b, &a);
        let (v2, hit2) = cache.cq_contained_keyed(&b, &a);
        assert_eq!(v1, v2);
        assert!(!hit1 && !hit2, "a zero cap must never serve a hit");
        assert_eq!(cache.sizes().cq_pairs, 0);
        assert_eq!(cache.stats().evicted_cq_pairs, 2);
    }

    #[test]
    fn shrinking_limits_evicts_immediately_and_clear_keeps_them() {
        let cache = DecisionCache::new();
        let psi = CqKey::of(&cq("q(X) :- e(X, Y)."));
        for n in 0..10 {
            let theta = CqKey::of(&cq(&format!("q(X) :- e(X, Y), g{n}(Y, Y).")));
            cache.cq_contained_keyed(&theta, &psi);
        }
        assert_eq!(cache.sizes().cq_pairs, 10);
        cache.set_limits(CacheLimits {
            max_cq_pairs: Some(4),
            ..CacheLimits::default()
        });
        assert!(cache.sizes().cq_pairs <= 4);
        assert!(cache.stats().evicted_cq_pairs >= 6);
        let dropped = cache.clear();
        assert!(dropped.cq_pairs <= 4);
        assert_eq!(
            cache.limits(),
            CacheLimits {
                max_cq_pairs: Some(4),
                ..CacheLimits::default()
            },
            "clear drops entries and stats, not configuration"
        );
    }
}
