//! Most-general unification of flat atoms.
//!
//! Datalog terms have no function symbols, so unification is a simple
//! union-find-style binding of variables to variables or constants; no
//! occurs check is needed.  Used by the unfolding machinery (§2.3 and §6):
//! "creating children by unifying an atom labelling a node with a fresh copy
//! of a rule in Π".

use std::collections::BTreeMap;

use datalog::atom::Atom;
use datalog::rule::Rule;
use datalog::term::{Term, Var};

/// An incrementally built most-general unifier.
#[derive(Clone, Debug, Default)]
pub struct Unifier {
    bindings: BTreeMap<Var, Term>,
}

impl Unifier {
    /// The empty unifier.
    pub fn new() -> Self {
        Unifier::default()
    }

    /// Resolve a term through the current bindings (follows chains).
    pub fn resolve(&self, term: Term) -> Term {
        let mut current = term;
        let mut steps = 0;
        while let Term::Var(v) = current {
            match self.bindings.get(&v) {
                Some(&next) if next != current => {
                    current = next;
                    steps += 1;
                    // Chains are acyclic by construction, but guard anyway.
                    if steps > self.bindings.len() + 1 {
                        break;
                    }
                }
                _ => break,
            }
        }
        current
    }

    /// Unify two terms; returns false (leaving the unifier unchanged in a
    /// still-consistent state) if they are not unifiable.
    pub fn unify_terms(&mut self, a: Term, b: Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return true;
        }
        match (ra, rb) {
            (Term::Var(v), other) | (other, Term::Var(v)) => {
                self.bindings.insert(v, other);
                true
            }
            (Term::Const(_), Term::Const(_)) => false,
        }
    }

    /// Unify two atoms (same predicate, same arity, all argument positions).
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        if a.pred != b.pred || a.terms.len() != b.terms.len() {
            return false;
        }
        a.terms
            .iter()
            .zip(&b.terms)
            .all(|(&ta, &tb)| self.unify_terms(ta, tb))
    }

    /// Apply the unifier to an atom, resolving chains completely.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.pred,
            atom.terms.iter().map(|&t| self.resolve(t)).collect(),
        )
    }

    /// Apply the unifier to a rule.
    pub fn apply_rule(&self, rule: &Rule) -> Rule {
        Rule::new(
            self.apply_atom(&rule.head),
            rule.body.iter().map(|a| self.apply_atom(a)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::parser::parse_atom;

    #[test]
    fn unifies_variables_with_constants_and_variables() {
        let mut u = Unifier::new();
        assert!(u.unify_atoms(
            &parse_atom("e(X, b)").unwrap(),
            &parse_atom("e(a, Y)").unwrap()
        ));
        assert_eq!(
            u.apply_atom(&parse_atom("e(X, Y)").unwrap()).to_string(),
            "e(a, b)"
        );
    }

    #[test]
    fn conflicting_constants_fail() {
        let mut u = Unifier::new();
        assert!(!u.unify_atoms(
            &parse_atom("e(a, X)").unwrap(),
            &parse_atom("e(b, X)").unwrap()
        ));
    }

    #[test]
    fn repeated_variables_force_identification() {
        // Unifying q(X, X) with q(Z, W) identifies Z and W.
        let mut u = Unifier::new();
        assert!(u.unify_atoms(
            &parse_atom("q(X, X)").unwrap(),
            &parse_atom("q(Z, W)").unwrap()
        ));
        let z = u.resolve(Term::Var(Var::new("Z")));
        let w = u.resolve(Term::Var(Var::new("W")));
        assert_eq!(z, w);
    }

    #[test]
    fn chains_are_resolved_transitively() {
        let mut u = Unifier::new();
        assert!(u.unify_terms(Term::Var(Var::new("A")), Term::Var(Var::new("B"))));
        assert!(u.unify_terms(Term::Var(Var::new("B")), Term::Var(Var::new("C"))));
        assert!(u.unify_terms(
            Term::Var(Var::new("C")),
            Term::Const(datalog::term::Constant::new("k"))
        ));
        assert_eq!(u.resolve(Term::Var(Var::new("A"))).to_string(), "k");
    }

    #[test]
    fn predicate_or_arity_mismatch_fails() {
        let mut u = Unifier::new();
        assert!(!u.unify_atoms(&parse_atom("e(X)").unwrap(), &parse_atom("f(X)").unwrap()));
        assert!(!u.unify_atoms(
            &parse_atom("e(X)").unwrap(),
            &parse_atom("e(X, Y)").unwrap()
        ));
    }
}
