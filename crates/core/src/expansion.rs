//! Expansion trees and unfolding expansion trees (Section 2.3, Figure 1).
//!
//! An expansion tree's nodes are labeled `(α, ρ)` where ρ is a rule instance
//! with head α and the children are labeled by the IDB atoms of ρ's body.
//! An *unfolding* expansion tree (Definition 2.4) additionally uses globally
//! fresh variables for every unfolding step: body variables of ρ either
//! occur in α or occur nowhere above.
//!
//! This module enumerates unfolding expansion trees up to a given height
//! (used by Figure 1, the boundedness tools, and the differential tests) and
//! converts them to their conjunctive queries.  The bounded-variable cousins
//! of these trees — proof trees — live in [`crate::proof_tree`].

use automata::tree::Tree;
use cq::ConjunctiveQuery;
use datalog::atom::{Atom, Pred};
use datalog::program::Program;
use datalog::rule::Rule;

use crate::labels::ProofLabel;
use crate::unify::Unifier;

/// An expansion tree: same node representation as a proof tree, but without
/// the `var(Π)` restriction.
pub type ExpansionTree = Tree<ProofLabel>;

/// Enumerate all unfolding expansion trees of height at most `max_height`
/// for the goal predicate.  The root atom of each tree is the head of a rule
/// of the program (Definition 2.4(a)), with that rule's own variable names.
///
/// The number of trees grows exponentially with the height; keep
/// `max_height` small (the tests and figures use ≤ 4).
pub fn unfolding_trees(program: &Program, goal: Pred, max_height: usize) -> Vec<ExpansionTree> {
    let idb = program.idb_predicates();
    let mut out = Vec::new();
    for (rule_index, rule) in program.rules_for(goal) {
        // The root uses the rule's head as written (fresh per Definition
        // 2.4: nothing occurs above the root).
        let mut trees = Vec::new();
        build(
            program,
            &idb,
            rule_index,
            rule.clone(),
            max_height,
            &mut trees,
        );
        out.extend(trees);
    }
    out
}

/// Recursively build all unfolding trees rooted at an instance of
/// `rule` (already renamed as desired), of height at most `budget`.
fn build(
    program: &Program,
    idb: &std::collections::BTreeSet<Pred>,
    rule_index: usize,
    instance: Rule,
    budget: usize,
    out: &mut Vec<ExpansionTree>,
) {
    if budget == 0 {
        return;
    }
    let idb_atoms: Vec<Atom> = instance
        .body
        .iter()
        .filter(|a| idb.contains(&a.pred))
        .cloned()
        .collect();
    if idb_atoms.is_empty() {
        out.push(Tree::leaf(ProofLabel {
            rule_index,
            instance,
        }));
        return;
    }
    // For every IDB atom, enumerate the subtrees obtainable by unfolding it
    // with a fresh copy of a rule; then take the cross product.
    let mut options: Vec<Vec<(ExpansionTree, Unifier)>> = Vec::new();
    for atom in &idb_atoms {
        let mut atom_options = Vec::new();
        for (child_rule_index, child_rule) in program.rules_for(atom.pred) {
            let (fresh, _) = child_rule.freshen("f");
            let mut unifier = Unifier::new();
            if !unifier.unify_atoms(&fresh.head, atom) {
                continue;
            }
            let unified = unifier.apply_rule(&fresh);
            let mut subtrees = Vec::new();
            build(
                program,
                idb,
                child_rule_index,
                unified,
                budget - 1,
                &mut subtrees,
            );
            for subtree in subtrees {
                atom_options.push((subtree, unifier.clone()));
            }
        }
        options.push(atom_options);
    }
    if options.iter().any(|o| o.is_empty()) {
        return;
    }
    // Cross product of child choices.
    let mut combo = vec![0usize; options.len()];
    loop {
        let children: Vec<ExpansionTree> = combo
            .iter()
            .zip(&options)
            .map(|(&i, opts)| opts[i].0.clone())
            .collect();
        out.push(Tree::node(
            ProofLabel {
                rule_index,
                instance: instance.clone(),
            },
            children,
        ));
        let mut carry = true;
        for (slot, opts) in combo.iter_mut().zip(&options) {
            if carry {
                *slot += 1;
                if *slot == opts.len() {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
}

/// The conjunctive query of an expansion tree whose variables are already
/// globally distinct per unfolding step (an unfolding expansion tree): the
/// head is the root's goal atom and the body collects every EDB atom of
/// every rule instance in the tree.
pub fn expansion_query(program: &Program, tree: &ExpansionTree) -> ConjunctiveQuery {
    let idb = program.idb_predicates();
    let mut body = Vec::new();
    collect_edb(&idb, tree, &mut body);
    ConjunctiveQuery::new(tree.label.instance.head.clone(), body)
}

fn collect_edb(idb: &std::collections::BTreeSet<Pred>, tree: &ExpansionTree, out: &mut Vec<Atom>) {
    for atom in &tree.label.instance.body {
        if !idb.contains(&atom.pred) {
            out.push(atom.clone());
        }
    }
    for child in &tree.children {
        collect_edb(idb, child, out);
    }
}

/// The expansion tree of Figure 1(a): the transitive-closure program's
/// depth-2 expansion tree in which the variable `X` is *reused* in the child
/// (so it is an expansion tree but not an unfolding expansion tree).
/// Returned together with the Figure 1(b) unfolding expansion tree, which
/// uses a fresh variable `W` instead.
pub fn figure1_trees(program: &Program) -> (ExpansionTree, ExpansionTree) {
    // Figure 1 is specific to the transitive-closure program
    //   r1: p(X, Y) :- e(X, Z), p(Z, Y).
    //   r0: p(X, Y) :- e'(X, Y).
    let recursive = program.rules()[0].clone();
    let exit_pred = program.rules()[1].body[0].pred;

    let parse = |s: &str| datalog::parser::parse_rule(s).unwrap();
    // Figure 1(a): the child instance reuses the variable X.
    let reused_child = parse(&format!("p(Z, Y) :- {}(Z, X).", exit_pred.name()));
    // Figure 1(b): a fresh variable W is used instead of X.
    let fresh_child = parse(&format!("p(Z, Y) :- {}(Z, W).", exit_pred.name()));

    let expansion = Tree::node(
        ProofLabel {
            rule_index: 0,
            instance: recursive.clone(),
        },
        vec![Tree::leaf(ProofLabel {
            rule_index: 1,
            instance: reused_child,
        })],
    );
    let unfolding = Tree::node(
        ProofLabel {
            rule_index: 0,
            instance: recursive,
        },
        vec![Tree::leaf(ProofLabel {
            rule_index: 1,
            instance: fresh_child,
        })],
    );
    (expansion, unfolding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::containment::cq_contained_in;
    use datalog::generate::transitive_closure;

    fn tc() -> Program {
        transitive_closure("e", "ep")
    }

    #[test]
    fn unfolding_trees_of_height_two_for_tc() {
        let trees = unfolding_trees(&tc(), Pred::new("p"), 2);
        // Height ≤ 2: the bare exit rule (height 1) and the recursive rule
        // over an exit-rule child (height 2).
        assert_eq!(trees.len(), 2);
        let heights: std::collections::BTreeSet<usize> = trees.iter().map(|t| t.height()).collect();
        assert_eq!(heights, std::collections::BTreeSet::from([1, 2]));
    }

    #[test]
    fn unfolding_tree_queries_are_paths() {
        let program = tc();
        let trees = unfolding_trees(&program, Pred::new("p"), 3);
        for tree in &trees {
            let q = expansion_query(&program, tree);
            // Height-h tree ⇒ h body atoms (h−1 edges + 1 exit edge) forming
            // a path, i.e. h+1 distinct variables.
            assert_eq!(q.body.len(), tree.height());
            assert_eq!(q.variables().len(), tree.height() + 1);
        }
    }

    #[test]
    fn fresh_variables_never_clash_across_unfolding_steps() {
        let program = tc();
        let trees = unfolding_trees(&program, Pred::new("p"), 4);
        let deepest = trees.iter().max_by_key(|t| t.height()).unwrap();
        let q = expansion_query(&program, deepest);
        // A path of length 4 has 5 distinct variables; any accidental
        // variable reuse would produce fewer.
        assert_eq!(q.variables().len(), 5);
    }

    #[test]
    fn figure1_expansion_vs_unfolding_tree() {
        let program = tc();
        let (expansion, unfolding) = figure1_trees(&program);
        assert_eq!(expansion.size(), 2);
        assert_eq!(unfolding.size(), 2);
        // The expansion tree reuses X: its query has 3 distinct variables
        // (X, Y, Z); the unfolding tree has 4 (X, Y, Z, W).
        let eq = expansion_query(&program, &expansion);
        let uq = expansion_query(&program, &unfolding);
        assert_eq!(eq.variables().len(), 3);
        assert_eq!(uq.variables().len(), 4);
        // Every expansion tree, viewed as a conjunctive query, is contained
        // in an unfolding expansion tree (Section 2.3).
        assert!(cq_contained_in(&eq, &uq));
        assert!(!cq_contained_in(&uq, &eq));
    }

    #[test]
    fn goal_without_rules_yields_no_trees() {
        let trees = unfolding_trees(&tc(), Pred::new("nonexistent"), 3);
        assert!(trees.is_empty());
    }

    #[test]
    fn zero_height_budget_yields_no_trees() {
        let trees = unfolding_trees(&tc(), Pred::new("p"), 0);
        assert!(trees.is_empty());
    }
}
