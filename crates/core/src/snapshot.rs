//! A versioned binary snapshot format for the [`DecisionCache`], so a
//! restarted server warms from disk instead of re-deciding its whole
//! working set ("persisted-cache warm start", the ROADMAP hardening item).
//!
//! # Format (version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NRDC"
//! 4       4     format version, u32 LE (currently 2)
//! 8       8     payload length in bytes, u64 LE
//! 16      8     FNV-1a 64 checksum of the payload, u64 LE
//! 24      …     payload
//! ```
//!
//! The payload is the three cache segments in order — full decisions
//! (including counterexample witnesses: proof tree, expansion, canonical
//! database, goal tuple), CQ-pair verdicts, canonical-database verdicts —
//! each as a `u32` entry count followed by the entries.  All integers are
//! little-endian; interned symbols travel as their name strings, so a
//! snapshot is valid across processes (interner ids are not stable, names
//! are).  Within each segment, entries are sorted by their encoded bytes:
//! saving is **deterministic**, and `save → load → save` round-trips
//! byte-identically (locked by `tests/cache_snapshot_prop.rs`).
//! Version 2 extended the per-decision [`ContainmentStats`] encoding with
//! the scheduler fields (`pairs_dominated`, `pops_skipped_dead`,
//! `max_frontier`); version-1 files are refused, not migrated.
//!
//! What is *not* persisted: [`crate::cache::CacheStats`] (counters describe
//! one process's traffic), LRU recency (a loaded entry is as good as fresh),
//! and [`crate::cache::CacheLimits`] (runtime configuration, not data).
//!
//! # Safety properties
//!
//! Decoding never panics and never partially applies: the whole snapshot is
//! staged off to the side and only merged into the cache once every byte
//! has decoded cleanly, so a corrupted, truncated, or version-bumped file
//! yields a [`SnapshotError`] and an untouched cache — never a wrong
//! verdict.  The checksum catches flipped payload bytes; the header length
//! catches truncation.  A snapshot is **trusted operator data** (whoever
//! can place one can equally issue `clear_cache` or restart the server):
//! the checksum defends against bit rot and torn writes, not against a
//! deliberate forgery, which no self-contained check could.

use std::fmt;

use cq::canonical::{CqKey, UcqKey};
use cq::ConjunctiveQuery;
use datalog::atom::{Atom, Fact, Pred};
use datalog::database::Database;
use datalog::rule::Rule;
use datalog::term::{Constant, Term, Var};

use crate::cache::{CacheSizes, DecisionCache, DecisionKey, ExportedEntries, ProgramKey};
use crate::containment::{ContainmentResult, ContainmentStats, Counterexample, DecisionPath};
use crate::labels::ProofLabel;
use crate::proof_tree::ProofTree;
use crate::ptrees_automaton::AutomatonStats;

/// The four magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NRDC";

/// The current snapshot format version.  Bump on any encoding change; the
/// decoder refuses other versions with
/// [`SnapshotError::UnsupportedVersion`] instead of misreading them.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Nesting bound for decoded proof trees, so a hostile snapshot cannot
/// overflow the decoder's stack.  Genuine witnesses are orders of magnitude
/// shallower (their depth is bounded by the containment engine's search).
const MAX_TREE_DEPTH: usize = 512;

/// Why a snapshot failed to load.  Every variant is a clean error — the
/// cache is left exactly as it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than the fixed header.
    TooShort,
    /// The magic bytes are not `b"NRDC"`.
    BadMagic,
    /// A version this build does not speak.
    UnsupportedVersion(u32),
    /// The payload is shorter or longer than the header claims.
    LengthMismatch {
        /// Payload length the header promised.
        expected: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match (bit rot, torn write).
    ChecksumMismatch,
    /// A structural decoding failure, with the byte offset.
    Corrupt {
        /// Byte offset (into the payload) where decoding failed.
        offset: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than its header"),
            SnapshotError::BadMagic => write!(f, "not a decision-cache snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build speaks {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot payload is {actual} bytes, header promised {expected}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt { offset, detail } => {
                write!(f, "corrupt snapshot at payload byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// The stable wire error code the server answers for this failure.
    pub fn code(&self) -> &'static str {
        "snapshot_error"
    }
}

// ---- FNV-1a 64 (the offline workspace has no hashing crates).

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- Encoder.

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_term(out: &mut Vec<u8>, term: Term) {
    match term {
        Term::Var(v) => {
            out.push(0);
            put_str(out, v.name());
        }
        Term::Const(c) => {
            out.push(1);
            put_str(out, c.name());
        }
    }
}

fn put_atom(out: &mut Vec<u8>, atom: &Atom) {
    put_str(out, atom.pred.name());
    put_u32(out, atom.terms.len() as u32);
    for &term in &atom.terms {
        put_term(out, term);
    }
}

fn put_cq(out: &mut Vec<u8>, cq: &ConjunctiveQuery) {
    put_atom(out, &cq.head);
    put_u32(out, cq.body.len() as u32);
    for atom in &cq.body {
        put_atom(out, atom);
    }
}

fn put_cq_key(out: &mut Vec<u8>, key: &CqKey) {
    put_cq(out, key.as_query());
}

fn put_program_key(out: &mut Vec<u8>, key: &ProgramKey) {
    put_u32(out, key.rule_keys().len() as u32);
    for rule in key.rule_keys() {
        put_cq_key(out, rule);
    }
}

fn put_tree(out: &mut Vec<u8>, tree: &ProofTree) {
    put_u64(out, tree.label.rule_index as u64);
    put_atom(out, &tree.label.instance.head);
    put_u32(out, tree.label.instance.body.len() as u32);
    for atom in &tree.label.instance.body {
        put_atom(out, atom);
    }
    put_u32(out, tree.children.len() as u32);
    for child in &tree.children {
        put_tree(out, child);
    }
}

fn put_automaton_stats(out: &mut Vec<u8>, stats: AutomatonStats) {
    put_u64(out, stats.states as u64);
    put_u64(out, stats.transitions as u64);
}

fn put_result(out: &mut Vec<u8>, result: &ContainmentResult) {
    put_bool(out, result.contained);
    match &result.counterexample {
        None => out.push(0),
        Some(cex) => {
            out.push(1);
            put_tree(out, &cex.proof_tree);
            put_cq(out, &cex.expansion);
            let mut facts: Vec<Vec<u8>> = cex
                .database
                .facts()
                .map(|fact| {
                    let mut buf = Vec::new();
                    put_str(&mut buf, fact.pred.name());
                    put_u32(&mut buf, fact.tuple.len() as u32);
                    for &c in &fact.tuple {
                        put_str(&mut buf, c.name());
                    }
                    buf
                })
                .collect();
            // Database iteration order is deterministic within a process
            // but the byte-identical-resave guarantee must not depend on
            // it: sort the encoded facts.
            facts.sort();
            put_u32(out, facts.len() as u32);
            for fact in facts {
                out.extend_from_slice(&fact);
            }
            put_u32(out, cex.goal_tuple.len() as u32);
            for &c in &cex.goal_tuple {
                put_str(out, c.name());
            }
        }
    }
    out.push(match result.stats.path {
        DecisionPath::TreeAutomata => 0,
        DecisionPath::WordAutomata => 1,
    });
    put_automaton_stats(out, result.stats.ptrees);
    put_automaton_stats(out, result.stats.queries);
    put_u64(out, result.stats.explored as u64);
    put_u64(out, result.stats.pairs_dominated as u64);
    put_u64(out, result.stats.pops_skipped_dead as u64);
    put_u64(out, result.stats.max_frontier as u64);
    put_u64(out, result.stats.micros.min(u64::MAX as u128) as u64);
}

fn put_decision_key(out: &mut Vec<u8>, key: &DecisionKey) {
    put_program_key(out, &key.program);
    put_str(out, key.goal.name());
    put_u32(out, key.query.disjuncts().len() as u32);
    for disjunct in key.query.disjuncts() {
        put_cq_key(out, disjunct);
    }
    put_bool(out, key.allow_word_path);
    put_bool(out, key.antichain);
    match key.max_pairs {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_u64(out, n as u64);
        }
    }
}

/// Encode a sorted section: each entry rendered into its own buffer, the
/// buffers sorted lexicographically, then count + concatenation.  Sorting
/// on bytes makes the output independent of `HashMap` iteration order.
fn put_section(out: &mut Vec<u8>, mut entries: Vec<Vec<u8>>) {
    entries.sort();
    put_u32(out, entries.len() as u32);
    for entry in entries {
        out.extend_from_slice(&entry);
    }
}

// ---- Decoder.

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.err(format!(
                "wanted {n} bytes, {} left",
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize64(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| self.err(format!("count {n} overflows usize")))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("invalid boolean byte {other}"))),
        }
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.err("string is not valid UTF-8"))
    }

    fn term(&mut self) -> Result<Term, SnapshotError> {
        match self.u8()? {
            0 => Ok(Term::Var(Var::new(self.str()?))),
            1 => Ok(Term::Const(Constant::new(self.str()?))),
            other => Err(self.err(format!("invalid term tag {other}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, SnapshotError> {
        let pred = Pred::new(self.str()?);
        let arity = self.u32()? as usize;
        let mut terms = Vec::new();
        for _ in 0..arity {
            terms.push(self.term()?);
        }
        Ok(Atom { pred, terms })
    }

    fn cq(&mut self) -> Result<ConjunctiveQuery, SnapshotError> {
        let head = self.atom()?;
        let body_len = self.u32()? as usize;
        let mut body = Vec::new();
        for _ in 0..body_len {
            body.push(self.atom()?);
        }
        Ok(ConjunctiveQuery { head, body })
    }

    /// A decoded key, trusted as canonical: persisted keys store the
    /// canonical form their live counterparts were computed from.
    /// `canonicalize_names` is idempotent now, so re-canonicalising a key
    /// written by this build would be merely redundant — but snapshots from
    /// builds predating the fixpoint iteration may hold non-fixpoint forms,
    /// and wrapping those verbatim keeps their entries reachable under the
    /// keys they were saved with instead of orphaning them.
    fn cq_key(&mut self) -> Result<CqKey, SnapshotError> {
        Ok(CqKey::from_canonical(self.cq()?))
    }

    fn program_key(&mut self) -> Result<ProgramKey, SnapshotError> {
        let rules = self.u32()? as usize;
        let mut keys = Vec::new();
        for _ in 0..rules {
            keys.push(self.cq_key()?);
        }
        Ok(ProgramKey::from_rule_keys(keys))
    }

    fn tree(&mut self, depth: usize) -> Result<ProofTree, SnapshotError> {
        if depth > MAX_TREE_DEPTH {
            return Err(self.err("proof tree nested too deep"));
        }
        let rule_index = self.usize64()?;
        let head = self.atom()?;
        let body_len = self.u32()? as usize;
        let mut body = Vec::new();
        for _ in 0..body_len {
            body.push(self.atom()?);
        }
        let label = ProofLabel {
            rule_index,
            instance: Rule::new(head, body),
        };
        let child_count = self.u32()? as usize;
        let mut children = Vec::new();
        for _ in 0..child_count {
            children.push(self.tree(depth + 1)?);
        }
        Ok(ProofTree { label, children })
    }

    fn automaton_stats(&mut self) -> Result<AutomatonStats, SnapshotError> {
        Ok(AutomatonStats {
            states: self.usize64()?,
            transitions: self.usize64()?,
        })
    }

    fn result(&mut self) -> Result<ContainmentResult, SnapshotError> {
        let contained = self.bool()?;
        let counterexample = match self.u8()? {
            0 => None,
            1 => {
                let proof_tree = self.tree(0)?;
                let expansion = self.cq()?;
                let fact_count = self.u32()? as usize;
                let mut database = Database::new();
                for _ in 0..fact_count {
                    let pred = Pred::new(self.str()?);
                    let arity = self.u32()? as usize;
                    let mut tuple = Vec::new();
                    for _ in 0..arity {
                        tuple.push(Constant::new(self.str()?));
                    }
                    database.insert(Fact::new(pred, tuple));
                }
                let tuple_len = self.u32()? as usize;
                let mut goal_tuple = Vec::new();
                for _ in 0..tuple_len {
                    goal_tuple.push(Constant::new(self.str()?));
                }
                Some(Counterexample {
                    proof_tree,
                    expansion,
                    database,
                    goal_tuple,
                })
            }
            other => return Err(self.err(format!("invalid counterexample tag {other}"))),
        };
        let path = match self.u8()? {
            0 => DecisionPath::TreeAutomata,
            1 => DecisionPath::WordAutomata,
            other => return Err(self.err(format!("invalid decision path tag {other}"))),
        };
        let ptrees = self.automaton_stats()?;
        let queries = self.automaton_stats()?;
        let explored = self.usize64()?;
        let pairs_dominated = self.usize64()?;
        let pops_skipped_dead = self.usize64()?;
        let max_frontier = self.usize64()?;
        let micros = self.u64()? as u128;
        Ok(ContainmentResult {
            contained,
            counterexample,
            stats: ContainmentStats {
                path,
                ptrees,
                queries,
                explored,
                pairs_dominated,
                pops_skipped_dead,
                max_frontier,
                micros,
            },
        })
    }

    fn decision_key(&mut self) -> Result<DecisionKey, SnapshotError> {
        let program = self.program_key()?;
        let goal = Pred::new(self.str()?);
        let disjunct_count = self.u32()? as usize;
        let mut disjuncts = Vec::new();
        for _ in 0..disjunct_count {
            disjuncts.push(self.cq_key()?);
        }
        let query = UcqKey::from_keys(disjuncts);
        let allow_word_path = self.bool()?;
        let antichain = self.bool()?;
        let max_pairs = match self.u8()? {
            0 => None,
            1 => Some(self.usize64()?),
            other => return Err(self.err(format!("invalid max_pairs tag {other}"))),
        };
        Ok(DecisionKey {
            program,
            goal,
            query,
            allow_word_path,
            antichain,
            max_pairs,
        })
    }
}

impl DecisionCache {
    /// Serialise every memoised entry into the versioned snapshot format.
    /// Deterministic: the same cache contents always render the same bytes.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot().0
    }

    /// As [`DecisionCache::to_snapshot_bytes`], also reporting the
    /// per-segment counts of the entries **in the snapshot**.  On a live
    /// cache these can differ from a subsequent [`DecisionCache::sizes`]
    /// call (other threads keep storing and evicting), and the server's
    /// `save_cache` verb must report what it wrote, not what the cache
    /// holds a moment later.
    pub fn snapshot(&self) -> (Vec<u8>, CacheSizes) {
        let entries = self.export_entries();
        let sizes = CacheSizes {
            decisions: entries.decisions.len(),
            cq_pairs: entries.cq_pairs.len(),
            cq_in_program: entries.cq_in_program.len(),
        };

        let mut payload = Vec::new();
        put_section(
            &mut payload,
            entries
                .decisions
                .iter()
                .map(|(key, result)| {
                    let mut buf = Vec::new();
                    put_decision_key(&mut buf, key);
                    put_result(&mut buf, result);
                    buf
                })
                .collect(),
        );
        put_section(
            &mut payload,
            entries
                .cq_pairs
                .iter()
                .map(|(theta, psi, verdict)| {
                    let mut buf = Vec::new();
                    put_cq_key(&mut buf, theta);
                    put_cq_key(&mut buf, psi);
                    put_bool(&mut buf, *verdict);
                    buf
                })
                .collect(),
        );
        put_section(
            &mut payload,
            entries
                .cq_in_program
                .iter()
                .map(|(program, goal, theta, verdict)| {
                    let mut buf = Vec::new();
                    put_program_key(&mut buf, program);
                    put_str(&mut buf, goal.name());
                    put_cq_key(&mut buf, theta);
                    put_bool(&mut buf, *verdict);
                    buf
                })
                .collect(),
        );

        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        (out, sizes)
    }

    /// Decode a snapshot and merge its entries into this cache.
    ///
    /// All-or-nothing: any error leaves the cache untouched.  Existing
    /// entries win over persisted ones, hit/miss statistics are untouched,
    /// and the configured [`crate::cache::CacheLimits`] are enforced after
    /// the merge (loading can evict, never overflow).  Returns how many
    /// entries per segment were actually added.
    pub fn load_snapshot_bytes(&self, bytes: &[u8]) -> Result<CacheSizes, SnapshotError> {
        if bytes.len() < 24 {
            return Err(SnapshotError::TooShort);
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let expected = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let payload = &bytes[24..];
        if payload.len() as u64 != expected {
            return Err(SnapshotError::LengthMismatch {
                expected,
                actual: payload.len() as u64,
            });
        }
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        // Stage everything before touching the cache.
        let mut reader = Reader {
            bytes: payload,
            pos: 0,
        };
        let decision_count = reader.u32()? as usize;
        let mut decisions = Vec::new();
        for _ in 0..decision_count {
            let key = reader.decision_key()?;
            let result = reader.result()?;
            decisions.push((key, result));
        }
        let pair_count = reader.u32()? as usize;
        let mut cq_pairs = Vec::new();
        for _ in 0..pair_count {
            let theta = reader.cq_key()?;
            let psi = reader.cq_key()?;
            let verdict = reader.bool()?;
            cq_pairs.push((theta, psi, verdict));
        }
        let in_program_count = reader.u32()? as usize;
        let mut cq_in_program = Vec::new();
        for _ in 0..in_program_count {
            let program = reader.program_key()?;
            let goal = Pred::new(reader.str()?);
            let theta = reader.cq_key()?;
            let verdict = reader.bool()?;
            cq_in_program.push((program, goal, theta, verdict));
        }
        if reader.pos != payload.len() {
            return Err(reader.err("trailing bytes after the last section"));
        }

        Ok(self.import_entries(ExportedEntries {
            decisions,
            cq_pairs,
            cq_in_program,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{datalog_contained_in_ucq_in, DecisionOptions};
    use datalog::parser::parse_program;

    fn warm_cache() -> DecisionCache {
        let cache = DecisionCache::new();
        let program = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).").unwrap();
        // One contained and one refuted decision (the latter stores a
        // counterexample witness, the payload-heavy path).
        for query in [
            "q(X, Y) :- e(X, Y).\nq(X, Y) :- e(X, Z), e(Z, Y).",
            "q(X, Y) :- e(X, Y).",
        ] {
            let ucq = cq::Ucq::parse(query).unwrap();
            datalog_contained_in_ucq_in(
                &cache,
                &program,
                Pred::new("p"),
                &ucq,
                DecisionOptions::default(),
            )
            .unwrap();
        }
        let a = ConjunctiveQuery::parse("q(X) :- e(X, Y), e(Y, Z).").unwrap();
        let b = ConjunctiveQuery::parse("q(X) :- e(X, Y).").unwrap();
        cache.cq_contained(&a, &b);
        cache.cq_in_datalog_cached(
            &ProgramKey::of(&parse_program("p(X) :- e(X, X).").unwrap()),
            Pred::new("p"),
            &CqKey::of(&b),
            || true,
        );
        cache
    }

    #[test]
    fn snapshot_round_trips_entries_and_bytes() {
        let cache = warm_cache();
        let sizes = cache.sizes();
        assert!(sizes.decisions >= 2 && sizes.cq_pairs >= 1 && sizes.cq_in_program >= 1);

        let bytes = cache.to_snapshot_bytes();
        let restored = DecisionCache::new();
        let added = restored.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(added, sizes);
        assert_eq!(restored.sizes(), sizes);
        // Byte-identical re-save.
        assert_eq!(restored.to_snapshot_bytes(), bytes);
        // Counters describe this process's traffic, not the snapshot's.
        assert_eq!(restored.stats().hits, 0);
        assert_eq!(restored.stats().misses, 0);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let cache = DecisionCache::new();
        let bytes = cache.to_snapshot_bytes();
        assert_eq!(bytes.len(), 24 + 12);
        let restored = DecisionCache::new();
        assert_eq!(
            restored.load_snapshot_bytes(&bytes).unwrap(),
            CacheSizes::default()
        );
    }

    #[test]
    fn loading_into_a_capped_cache_sheds_snapshot_entries_not_the_live_hot_set() {
        use crate::cache::CacheLimits;
        // A snapshot with many CQ-pair entries.
        let donor = DecisionCache::new();
        let psi = ConjunctiveQuery::parse("q(X) :- e(X, Y).").unwrap();
        for n in 0..40 {
            let theta =
                ConjunctiveQuery::parse(&format!("q(X) :- e(X, Y), cold{n}(Y, Y).")).unwrap();
            donor.cq_contained(&theta, &psi);
        }
        let bytes = donor.to_snapshot_bytes();

        // A capped cache serving a live hot set.
        let live = DecisionCache::with_limits(CacheLimits {
            max_cq_pairs: Some(8),
            ..CacheLimits::default()
        });
        let hot: Vec<ConjunctiveQuery> = (0..4)
            .map(|n| ConjunctiveQuery::parse(&format!("q(X) :- hot{n}(X, X).")).unwrap())
            .collect();
        for theta in &hot {
            live.cq_contained(theta, &psi);
        }
        live.load_snapshot_bytes(&bytes).unwrap();
        assert!(live.sizes().cq_pairs <= 8);
        // The live hot set must have survived the merge-and-enforce: the
        // snapshot's surplus is what gets shed.
        for theta in &hot {
            let (_, hit) = live.cq_contained(theta, &psi);
            assert!(hit, "live entry evicted in favour of snapshot entries");
        }
    }

    #[test]
    fn header_failures_are_clean_errors() {
        let cache = warm_cache();
        let bytes = cache.to_snapshot_bytes();
        let fresh = DecisionCache::new();

        assert_eq!(
            fresh.load_snapshot_bytes(&bytes[..10]),
            Err(SnapshotError::TooShort)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            fresh.load_snapshot_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        );
        let mut bumped = bytes.clone();
        bumped[4] = (SNAPSHOT_VERSION + 1) as u8;
        assert_eq!(
            fresh.load_snapshot_bytes(&bumped),
            Err(SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
        let truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(
            fresh.load_snapshot_bytes(truncated),
            Err(SnapshotError::LengthMismatch { .. })
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert_eq!(
            fresh.load_snapshot_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch)
        );
        assert!(fresh.is_empty(), "failed loads must not touch the cache");
    }
}
