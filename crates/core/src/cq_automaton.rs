//! The conjunctive-query automaton `A_θ(Q, Π)` of Proposition 5.10.
//!
//! `T(A_θ(Q, Π))` is the set of proof trees τ ∈ ptrees(Q, Π) that admit a
//! *strong containment mapping* from θ (Definition 5.4): a containment
//! mapping that sends distinguished occurrences to distinguished occurrences
//! and occurrences of the same θ-variable to *connected* occurrences of the
//! same variable in τ.
//!
//! A state is a triple `(α, β, M)`:
//!
//! * α — the IDB atom (over `var(Π)`) expected as the goal of the node,
//! * β — the set of θ-atoms that still have to be mapped at or below the
//!   node,
//! * M — a partial mapping from θ-variables to terms over `var(Π)`,
//!   recording images already committed higher up the tree.
//!
//! Reading a label `(α, ρ)`, the automaton nondeterministically maps some of
//! β's atoms into ρ's (EDB) body atoms and distributes the rest among the
//! children (the IDB atoms of ρ), subject to the paper's side conditions:
//! a θ-variable shared between two children must already have an image and
//! that image must occur in both child goals; a θ-variable with an image
//! that is passed to a child must have its image occur in that child's goal.
//! These conditions are what make the induced mapping *strong* (connected
//! occurrences).  Leaf transitions require the remaining β to map entirely
//! into the body of an all-EDB rule instance.
//!
//! To keep the reachable state space small we additionally project M onto
//! the variables of the atoms that are still pending — dropped bindings can
//! never be consulted again, so the projection does not change the language.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use automata::tree::TreeAutomaton;
use cq::ConjunctiveQuery;
use datalog::atom::{Atom, Pred};
use datalog::substitution::Substitution;
use datalog::term::{Term, Var};

use crate::labels::{LabelContext, ProofLabel};
use crate::ptrees_automaton::AutomatonStats;

/// A constructed `A_θ(Q, Π)` automaton.
pub struct CqAutomaton {
    /// The underlying tree automaton, over the same label alphabet as the
    /// proof-tree automaton built from the same [`LabelContext`].
    pub automaton: TreeAutomaton<ProofLabel>,
    /// Number of interned `(α, β, M)` states.
    pub states: usize,
}

/// Internal state key: (goal atom, remaining θ-atom indices, mapping).
type StateKey = (Atom, Vec<usize>, Vec<(Var, Term)>);

impl CqAutomaton {
    /// Build `A_θ(goal, Π)` for the conjunctive query `theta`, sharing the
    /// label context (and hence alphabet) of the proof-tree automaton.
    pub fn build(context: &LabelContext, goal: Pred, theta: &ConjunctiveQuery) -> Self {
        let mut automaton = TreeAutomaton::new(0);
        let mut state_of: BTreeMap<StateKey, usize> = BTreeMap::new();
        let mut queue: VecDeque<StateKey> = VecDeque::new();

        let intern = |key: StateKey,
                      automaton: &mut TreeAutomaton<ProofLabel>,
                      state_of: &mut BTreeMap<StateKey, usize>,
                      queue: &mut VecDeque<StateKey>|
         -> usize {
            if let Some(&id) = state_of.get(&key) {
                return id;
            }
            let id = automaton.add_state();
            state_of.insert(key.clone(), id);
            queue.push_back(key);
            id
        };

        // Start states: (Q(s), θ, M_{θ,s}) for every goal atom Q(s), where
        // M_{θ,s} maps the i-th distinguished term of θ to the i-th term of
        // s — provided that binding is consistent (repeated distinguished
        // variables need equal images; constants in θ's head can never map
        // to a proof-tree variable).
        let all_atoms: Vec<usize> = (0..theta.body.len()).collect();
        for goal_atom in context.goal_atoms(goal) {
            if goal_atom.arity() != theta.head.arity() {
                continue;
            }
            let mut mapping: BTreeMap<Var, Term> = BTreeMap::new();
            let mut consistent = true;
            for (&theta_term, &goal_term) in theta.head.terms.iter().zip(&goal_atom.terms) {
                match theta_term {
                    Term::Const(_) => {
                        // Proof trees are over variables of var(Π); a head
                        // constant can never be matched.
                        consistent = false;
                        break;
                    }
                    Term::Var(v) => match mapping.get(&v) {
                        Some(&existing) if existing != goal_term => {
                            consistent = false;
                            break;
                        }
                        _ => {
                            mapping.insert(v, goal_term);
                        }
                    },
                }
            }
            if !consistent {
                continue;
            }
            let key = make_key(goal_atom, &all_atoms, &mapping, theta);
            let id = intern(key, &mut automaton, &mut state_of, &mut queue);
            automaton.add_initial(id);
        }

        // Saturate transitions.
        while let Some(key) = queue.pop_front() {
            let state = state_of[&key];
            let (atom, remaining, mapping_vec) = key;
            let mapping: BTreeMap<Var, Term> = mapping_vec.into_iter().collect();
            for label in context.labels_for(&atom) {
                let idb_children: Vec<Atom> = context
                    .idb_body_atoms(&label.instance)
                    .into_iter()
                    .map(|(_, a)| a.clone())
                    .collect();
                let edb_atoms: Vec<Atom> = context
                    .edb_body_atoms(&label.instance)
                    .into_iter()
                    .cloned()
                    .collect();

                if idb_children.is_empty() {
                    // Leaf transition: every remaining θ-atom must map into
                    // the EDB body, consistently with M.
                    let source: Vec<Atom> =
                        remaining.iter().map(|&i| theta.body[i].clone()).collect();
                    let seed: Substitution = mapping.iter().map(|(&v, &t)| (v, t)).collect();
                    if cq::homomorphism::homomorphism_exists(&source, &edb_atoms, &seed) {
                        automaton.add_transition(state, label, Vec::new());
                    }
                    continue;
                }

                // Internal transition: enumerate assignments of the
                // remaining θ-atoms to "map now" or "defer to child j".
                enumerate_transitions(
                    theta,
                    &remaining,
                    &mapping,
                    &edb_atoms,
                    &idb_children,
                    &mut |child_sets: &[BTreeSet<usize>], extended: &BTreeMap<Var, Term>| {
                        let children: Vec<usize> = idb_children
                            .iter()
                            .zip(child_sets)
                            .map(|(child_atom, beta)| {
                                let beta_vec: Vec<usize> = beta.iter().copied().collect();
                                let key = make_key(child_atom.clone(), &beta_vec, extended, theta);
                                intern(key, &mut automaton, &mut state_of, &mut queue)
                            })
                            .collect();
                        automaton.add_transition(state, label.clone(), children);
                    },
                );
            }
        }

        CqAutomaton {
            states: state_of.len(),
            automaton,
        }
    }

    /// Size statistics.
    pub fn stats(&self) -> AutomatonStats {
        AutomatonStats {
            states: self.automaton.state_count(),
            transitions: self.automaton.transition_count(),
        }
    }
}

/// Build a state key, projecting the mapping onto the variables of the
/// pending atoms.
fn make_key(
    atom: Atom,
    remaining: &[usize],
    mapping: &BTreeMap<Var, Term>,
    theta: &ConjunctiveQuery,
) -> StateKey {
    let relevant: BTreeSet<Var> = remaining
        .iter()
        .flat_map(|&i| theta.body[i].variables())
        .collect();
    let projected: Vec<(Var, Term)> = mapping
        .iter()
        .filter(|(v, _)| relevant.contains(v))
        .map(|(&v, &t)| (v, t))
        .collect();
    let mut remaining = remaining.to_vec();
    remaining.sort_unstable();
    (atom, remaining, projected)
}

/// Callback receiving, for each valid transition choice, the per-child
/// pending sets and the extended mapping M′.
type EmitTransition<'a> = dyn FnMut(&[BTreeSet<usize>], &BTreeMap<Var, Term>) + 'a;

/// Enumerate all valid transitions from a state with pending atoms
/// `remaining`, mapping `mapping`, for a rule instance with EDB body
/// `edb_atoms` and IDB children `idb_children`.  For each valid choice,
/// `emit` is called with the per-child pending sets and the extended
/// mapping M′.
fn enumerate_transitions(
    theta: &ConjunctiveQuery,
    remaining: &[usize],
    mapping: &BTreeMap<Var, Term>,
    edb_atoms: &[Atom],
    idb_children: &[Atom],
    emit: &mut EmitTransition<'_>,
) {
    // Step 1: choose, for each pending atom, either an EDB body atom to map
    // onto now (extending the binding) or a child to defer to.
    #[derive(Clone)]
    struct Choice {
        child_sets: Vec<BTreeSet<usize>>,
        binding: BTreeMap<Var, Term>,
    }

    let mut partial = vec![Choice {
        child_sets: vec![BTreeSet::new(); idb_children.len()],
        binding: mapping.clone(),
    }];

    for &atom_index in remaining {
        let theta_atom = &theta.body[atom_index];
        let mut next: Vec<Choice> = Vec::new();
        for choice in &partial {
            // Option A: map now onto some EDB atom of the rule body.
            for body_atom in edb_atoms {
                if let Some(binding) = try_map_atom(theta_atom, body_atom, &choice.binding) {
                    let mut updated = choice.clone();
                    updated.binding = binding;
                    next.push(updated);
                }
            }
            // Option B: defer to child j.
            for j in 0..idb_children.len() {
                let mut updated = choice.clone();
                updated.child_sets[j].insert(atom_index);
                next.push(updated);
            }
        }
        partial = next;
        if partial.is_empty() {
            return;
        }
    }

    // Step 2: for each assignment, enforce the connectedness side
    // conditions and extend the mapping with forced shared-variable images.
    for choice in partial {
        // Collect, for every deferred variable, the set of children it is
        // deferred to.
        let mut deferred_vars: BTreeMap<Var, BTreeSet<usize>> = BTreeMap::new();
        for (j, beta_j) in choice.child_sets.iter().enumerate() {
            for &atom_index in beta_j {
                for v in theta.body[atom_index].variables() {
                    deferred_vars.entry(v).or_default().insert(j);
                }
            }
        }
        // Terms occurring in each child's goal atom.
        let child_goal_terms: Vec<BTreeSet<Term>> = idb_children
            .iter()
            .map(|a| a.terms.iter().copied().collect())
            .collect();

        // Variables with an existing image must have that image in every
        // child goal they are deferred to (condition 4).
        let mut ok = true;
        let mut forced: Vec<(Var, Vec<Term>)> = Vec::new();
        for (v, children) in &deferred_vars {
            match choice.binding.get(v) {
                Some(&image) => {
                    if !children
                        .iter()
                        .all(|&j| child_goal_terms[j].contains(&image))
                    {
                        ok = false;
                        break;
                    }
                }
                None => {
                    if children.len() >= 2 {
                        // Condition 3: the variable must get an image common
                        // to all the child goals it is shared between.
                        let mut candidates: Option<BTreeSet<Term>> = None;
                        for &j in children {
                            candidates = Some(match candidates {
                                None => child_goal_terms[j].clone(),
                                Some(prev) => {
                                    prev.intersection(&child_goal_terms[j]).copied().collect()
                                }
                            });
                        }
                        let candidates = candidates.unwrap_or_default();
                        if candidates.is_empty() {
                            ok = false;
                            break;
                        }
                        forced.push((*v, candidates.into_iter().collect()));
                    }
                }
            }
        }
        if !ok {
            continue;
        }

        // Step 3: branch over the forced shared-variable images.
        let mut assignments = vec![choice.binding.clone()];
        for (v, candidates) in &forced {
            let mut next = Vec::new();
            for base in &assignments {
                for &candidate in candidates {
                    let mut extended = base.clone();
                    extended.insert(*v, candidate);
                    next.push(extended);
                }
            }
            assignments = next;
        }
        for extended in assignments {
            emit(&choice.child_sets, &extended);
        }
    }
}

/// Try to map a θ-atom onto a body atom, extending `binding`.  Returns the
/// extended binding, or `None` on mismatch.
fn try_map_atom(
    theta_atom: &Atom,
    body_atom: &Atom,
    binding: &BTreeMap<Var, Term>,
) -> Option<BTreeMap<Var, Term>> {
    if theta_atom.pred != body_atom.pred || theta_atom.terms.len() != body_atom.terms.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (&theta_term, &body_term) in theta_atom.terms.iter().zip(&body_atom.terms) {
        match theta_term {
            Term::Const(c) => {
                if Term::Const(c) != body_term {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(&v) {
                Some(&existing) => {
                    if existing != body_term {
                        return None;
                    }
                }
                None => {
                    extended.insert(v, body_term);
                }
            },
        }
    }
    Some(extended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::canonical_atom;
    use automata::tree::emptiness::{find_witness, is_empty};
    use automata::tree::Tree;
    use datalog::generate::transitive_closure;

    use crate::ptrees_automaton::PtreesAutomaton;

    fn tc_setup() -> (PtreesAutomaton, LabelContext) {
        let program = transitive_closure("e", "ep");
        let ptrees = PtreesAutomaton::build(&program, Pred::new("p"));
        let context = ptrees.context.clone();
        (ptrees, context)
    }

    /// A depth-k "path" proof tree over distinct variables where possible.
    fn tc_path_tree(context: &LabelContext, depth: usize) -> Tree<ProofLabel> {
        // Root goal p(x1, x2); each recursive step routes through x3/x1
        // alternately; the last node uses the exit rule.
        fn build(context: &LabelContext, goal: Atom, depth: usize) -> Tree<ProofLabel> {
            if depth == 1 {
                let label = context
                    .labels_for(&goal)
                    .into_iter()
                    .find(|l| l.rule_index == 1)
                    .unwrap();
                return Tree::leaf(label);
            }
            // Pick the recursive instance whose middle variable differs from
            // both goal variables when possible.
            let labels = context.labels_for(&goal);
            let label = labels
                .into_iter()
                .filter(|l| l.rule_index == 0)
                .max_by_key(|l| {
                    let mid = l.instance.body[0].terms[1];
                    usize::from(mid != goal.terms[0] && mid != goal.terms[1])
                })
                .unwrap();
            let child_goal = label.instance.body[1].clone();
            let child = build(context, child_goal, depth - 1);
            Tree::node(label, vec![child])
        }
        build(context, canonical_atom("p", &[1, 2]), depth)
    }

    #[test]
    fn single_edge_query_accepts_only_depth_one_proof_trees() {
        let (_, context) = tc_setup();
        // θ: p ⊆ "single e'-edge from X to Y"?  Only the depth-1 proof trees
        // (exit rule at the root) admit a strong containment mapping.
        let theta = ConjunctiveQuery::parse("q(X, Y) :- ep(X, Y).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        assert!(!is_empty(&a_theta.automaton));

        let depth1 = tc_path_tree(&context, 1);
        let depth2 = tc_path_tree(&context, 2);
        assert!(a_theta.automaton.accepts(&depth1));
        assert!(!a_theta.automaton.accepts(&depth2));
    }

    #[test]
    fn boolean_edge_query_accepts_all_proof_trees() {
        let (ptrees, context) = tc_setup();
        // θ: Boolean "there is an e'-edge somewhere".  Every proof tree ends
        // with an exit rule, so every proof tree is accepted.
        let theta = ConjunctiveQuery::parse("q(X, Y) :- ep(U, V).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        for depth in 1..=3 {
            let tree = tc_path_tree(&context, depth);
            assert!(
                ptrees.automaton.accepts(&tree),
                "ptrees rejects depth {depth}"
            );
            assert!(
                a_theta.automaton.accepts(&tree),
                "A_θ rejects depth {depth}"
            );
        }
    }

    #[test]
    fn two_step_query_rejects_depth_one_and_accepts_depth_two() {
        let (_, context) = tc_setup();
        // θ(X, Y) :- e(X, Z), ep(Z, Y): exactly the expansion of depth 2.
        let theta = ConjunctiveQuery::parse("q(X, Y) :- e(X, Z), ep(Z, Y).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        assert!(!a_theta.automaton.accepts(&tc_path_tree(&context, 1)));
        assert!(a_theta.automaton.accepts(&tc_path_tree(&context, 2)));
        assert!(!a_theta.automaton.accepts(&tc_path_tree(&context, 3)));
    }

    #[test]
    fn connectedness_condition_rejects_variable_reuse_across_disconnected_occurrences() {
        let (_, context) = tc_setup();
        // θ(X, Y) :- e(X, W), ep(W, Y) is fine, but
        // θ'(X, Y) :- e(X, X): requires the root's two distinguished
        // variables to coincide; only diagonal-rooted proof trees could
        // satisfy it, and the depth-1 tree rooted at p(x1, x2) must be
        // rejected.
        let theta = ConjunctiveQuery::parse("q(X, Y) :- ep(X, X).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        let depth1 = tc_path_tree(&context, 1); // root p(x1, x2)
        assert!(!a_theta.automaton.accepts(&depth1));
        // A diagonal proof tree p(x1, x1) :- ep(x1, x1) is accepted.
        let diag_goal = canonical_atom("p", &[1, 1]);
        let diag_label = context
            .labels_for(&diag_goal)
            .into_iter()
            .find(|l| l.rule_index == 1)
            .unwrap();
        assert!(a_theta.automaton.accepts(&Tree::leaf(diag_label)));
    }

    #[test]
    fn unsatisfiable_query_yields_empty_automaton() {
        let (_, context) = tc_setup();
        // θ mentions a predicate that no rule body contains.
        let theta = ConjunctiveQuery::parse("q(X, Y) :- missing(X, Y).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        assert!(is_empty(&a_theta.automaton));
    }

    #[test]
    fn witness_trees_are_accepted_by_the_ptrees_automaton() {
        let (ptrees, context) = tc_setup();
        let theta = ConjunctiveQuery::parse("q(X, Y) :- e(X, Z), ep(Z, Y).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        let witness = find_witness(&a_theta.automaton).unwrap();
        assert!(ptrees.automaton.accepts(&witness));
        assert!(crate::proof_tree::is_valid_proof_tree(
            context.program(),
            &witness
        ));
    }

    #[test]
    fn stats_are_reported() {
        let (_, context) = tc_setup();
        let theta = ConjunctiveQuery::parse("q(X, Y) :- ep(X, Y).").unwrap();
        let a_theta = CqAutomaton::build(&context, Pred::new("p"), &theta);
        let stats = a_theta.stats();
        assert!(stats.states > 0);
        assert!(stats.transitions > 0);
        assert_eq!(a_theta.states, stats.states);
    }
}
