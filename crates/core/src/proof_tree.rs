//! Proof trees (Section 5.1): expansion trees over the bounded variable set
//! `var(Π)`, the connectedness relation on variable occurrences
//! (Definition 5.2), distinguished occurrences, and the conversion from a
//! proof tree back to the expansion (conjunctive query) it represents.
//!
//! A proof tree is represented as an [`automata::tree::Tree`] whose labels
//! are [`ProofLabel`]s, so the automata constructions of Propositions 5.9
//! and 5.10 can consume it directly.  This module adds the Datalog-side
//! semantics.

use std::collections::BTreeMap;

use automata::tree::Tree;
use cq::ConjunctiveQuery;
use datalog::atom::Atom;
use datalog::program::Program;
use datalog::term::{Term, Var};

use crate::labels::{LabelContext, ProofLabel};

/// A proof tree: a tree of rule instances over `var(Π)`.
pub type ProofTree = Tree<ProofLabel>;

/// Identifies one occurrence of a variable inside a proof tree:
/// which node, which atom of the node's rule instance (the head is atom
/// index 0, body atom `i` is index `i + 1`), and which argument position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occurrence {
    /// Node index in pre-order.
    pub node: usize,
    /// 0 = the head atom of the rule instance, `i + 1` = body atom `i`.
    pub atom: usize,
    /// Argument position within the atom.
    pub position: usize,
}

/// A proof tree flattened into indexed nodes, with the occurrence-level
/// connectedness analysis of Definition 5.2.
pub struct ProofTreeAnalysis {
    /// The nodes in pre-order; `parents[i]` is the parent of node `i`
    /// (`None` for the root).
    pub labels: Vec<ProofLabel>,
    /// Parent indices.
    pub parents: Vec<Option<usize>>,
    /// For every occurrence, the representative occurrence of its
    /// connectedness class.
    class_of: BTreeMap<Occurrence, Occurrence>,
    /// The variable of each occurrence.
    var_of: BTreeMap<Occurrence, Var>,
    /// Classes that contain an occurrence in the root's goal atom
    /// (distinguished classes), mapped to the root-atom positions they touch.
    distinguished: BTreeMap<Occurrence, Vec<usize>>,
}

impl ProofTreeAnalysis {
    /// Analyse a proof tree.
    pub fn new(tree: &ProofTree) -> Self {
        // Flatten the tree in pre-order.
        let mut labels = Vec::new();
        let mut parents = Vec::new();
        fn flatten(
            node: &ProofTree,
            parent: Option<usize>,
            labels: &mut Vec<ProofLabel>,
            parents: &mut Vec<Option<usize>>,
        ) {
            let index = labels.len();
            labels.push(node.label.clone());
            parents.push(parent);
            for child in &node.children {
                flatten(child, Some(index), labels, parents);
            }
        }
        flatten(tree, None, &mut labels, &mut parents);

        // Collect occurrences per node, grouped by variable.
        let mut occurrences: Vec<Occurrence> = Vec::new();
        let mut var_of: BTreeMap<Occurrence, Var> = BTreeMap::new();
        let mut node_var_occurrences: Vec<BTreeMap<Var, Vec<Occurrence>>> =
            vec![BTreeMap::new(); labels.len()];
        for (node, label) in labels.iter().enumerate() {
            let atoms: Vec<&Atom> = std::iter::once(&label.instance.head)
                .chain(label.instance.body.iter())
                .collect();
            for (atom_index, atom) in atoms.iter().enumerate() {
                for (position, term) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        let occ = Occurrence {
                            node,
                            atom: atom_index,
                            position,
                        };
                        occurrences.push(occ);
                        var_of.insert(occ, *v);
                        node_var_occurrences[node].entry(*v).or_default().push(occ);
                    }
                }
            }
        }

        // Union-find over occurrences.
        let index_of: BTreeMap<Occurrence, usize> = occurrences
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, i))
            .collect();
        let mut uf: Vec<usize> = (0..occurrences.len()).collect();
        fn find(uf: &mut [usize], mut i: usize) -> usize {
            while uf[i] != i {
                uf[i] = uf[uf[i]];
                i = uf[i];
            }
            i
        }
        let union = |uf: &mut Vec<usize>, a: usize, b: usize| {
            let ra = find(uf, a);
            let rb = find(uf, b);
            if ra != rb {
                uf[ra] = rb;
            }
        };

        // (1) All occurrences of the same variable within one node are
        // connected (the connecting path is the node itself).
        for per_node in &node_var_occurrences {
            for occs in per_node.values() {
                for window in occs.windows(2) {
                    union(&mut uf, index_of[&window[0]], index_of[&window[1]]);
                }
            }
        }
        // (2) Parent/child: occurrences of v in the parent and in the child
        // are connected iff v occurs in the *child's goal atom* (the lowest
        // common ancestor is the parent, which Definition 5.2 exempts).
        for (node, parent) in parents.iter().enumerate() {
            let Some(parent) = parent else { continue };
            for (v, child_occs) in &node_var_occurrences[node] {
                let child_goal_has_v = labels[node].instance.head.variables().any(|hv| hv == *v);
                if !child_goal_has_v {
                    continue;
                }
                if let Some(parent_occs) = node_var_occurrences[*parent].get(v) {
                    union(&mut uf, index_of[&child_occs[0]], index_of[&parent_occs[0]]);
                }
            }
        }

        // Freeze classes.
        let mut class_of: BTreeMap<Occurrence, Occurrence> = BTreeMap::new();
        for (i, &occ) in occurrences.iter().enumerate() {
            let root = find(&mut uf, i);
            class_of.insert(occ, occurrences[root]);
        }

        // Distinguished classes: classes containing an occurrence in the
        // root node's goal atom.
        let mut distinguished: BTreeMap<Occurrence, Vec<usize>> = BTreeMap::new();
        if let Some(root_label) = labels.first() {
            for (position, term) in root_label.instance.head.terms.iter().enumerate() {
                if term.is_var() {
                    let occ = Occurrence {
                        node: 0,
                        atom: 0,
                        position,
                    };
                    let class = class_of[&occ];
                    distinguished.entry(class).or_default().push(position);
                }
            }
        }

        ProofTreeAnalysis {
            labels,
            parents,
            class_of,
            var_of,
            distinguished,
        }
    }

    /// The representative of the connectedness class of an occurrence.
    pub fn class(&self, occ: Occurrence) -> Option<Occurrence> {
        self.class_of.get(&occ).copied()
    }

    /// Are two occurrences connected (Definition 5.2)?
    pub fn connected(&self, a: Occurrence, b: Occurrence) -> bool {
        match (self.class_of.get(&a), self.class_of.get(&b)) {
            (Some(ca), Some(cb)) => ca == cb && self.var_of[&a] == self.var_of[&b],
            _ => false,
        }
    }

    /// Is the occurrence distinguished (connected to an occurrence of the
    /// same variable in the root's goal atom)?
    pub fn is_distinguished(&self, occ: Occurrence) -> bool {
        self.class_of
            .get(&occ)
            .is_some_and(|c| self.distinguished.contains_key(c))
    }

    /// Number of distinct connectedness classes.
    pub fn class_count(&self) -> usize {
        let mut reps: Vec<Occurrence> = self.class_of.values().copied().collect();
        reps.sort();
        reps.dedup();
        reps.len()
    }

    /// The fresh variable used for a class when converting to an expansion.
    fn class_variable(&self, class: Occurrence) -> Var {
        // Root-goal classes keep the root variable's name so the expansion's
        // head reads naturally; other classes get a name derived from the
        // class representative.
        if self.distinguished.contains_key(&class) {
            self.var_of[&class]
        } else {
            Var::new(&format!(
                "v_{}_{}_{}",
                class.node, class.atom, class.position
            ))
        }
    }

    /// The expansion (conjunctive query) represented by the proof tree: the
    /// conjunction of all EDB atoms of all rule instances, with each
    /// connectedness class renamed to a distinct variable and the root goal
    /// atom as the head (Proposition 5.5's renaming Δ).
    pub fn to_expansion(&self, context: &LabelContext) -> ConjunctiveQuery {
        let rename_atom = |node: usize, atom_index: usize, atom: &Atom| -> Atom {
            Atom::new(
                atom.pred,
                atom.terms
                    .iter()
                    .enumerate()
                    .map(|(position, term)| match term {
                        Term::Const(c) => Term::Const(*c),
                        Term::Var(_) => {
                            let occ = Occurrence {
                                node,
                                atom: atom_index,
                                position,
                            };
                            Term::Var(self.class_variable(self.class_of[&occ]))
                        }
                    })
                    .collect(),
            )
        };

        let head = rename_atom(0, 0, &self.labels[0].instance.head);
        let mut body = Vec::new();
        for (node, label) in self.labels.iter().enumerate() {
            for (body_index, atom) in label.instance.body.iter().enumerate() {
                if !context.is_idb(atom.pred) {
                    body.push(rename_atom(node, body_index + 1, atom));
                }
            }
        }
        ConjunctiveQuery::new(head, body)
    }
}

/// Check that a tree of labels is a structurally valid proof tree for the
/// program: every node's children correspond exactly (in order) to the IDB
/// atoms of its rule instance, every rule instance is an instance of the
/// indexed program rule, and all variables come from `var(Π)`.
pub fn is_valid_proof_tree(program: &Program, tree: &ProofTree) -> bool {
    let context = LabelContext::new(program);
    fn check(context: &LabelContext, node: &ProofTree) -> bool {
        let label = &node.label;
        // The rule index must exist and the instance must match its shape.
        let Some(rule) = context.program().rules().get(label.rule_index) else {
            return false;
        };
        if rule.head.pred != label.instance.head.pred
            || rule.body.len() != label.instance.body.len()
            || rule
                .body
                .iter()
                .zip(&label.instance.body)
                .any(|(a, b)| a.pred != b.pred || a.arity() != b.arity())
        {
            return false;
        }
        // Instance variables must come from var(Π).
        let allowed: std::collections::BTreeSet<Var> =
            context.variables().iter().copied().collect();
        if !label
            .instance
            .variables()
            .iter()
            .all(|v| allowed.contains(v))
        {
            return false;
        }
        // Children must match the IDB body atoms in order.
        let idb_atoms = context.idb_body_atoms(&label.instance);
        if idb_atoms.len() != node.children.len() {
            return false;
        }
        for ((_, expected), child) in idb_atoms.iter().zip(&node.children) {
            if child.label.instance.head != **expected {
                return false;
            }
        }
        node.children.iter().all(|c| check(context, c))
    }
    check(&context, tree)
}

/// Render a proof tree in the style of the paper's Figure 2: one node per
/// line, indented, showing the goal atom and the rule instance.
pub fn render_proof_tree(tree: &ProofTree) -> String {
    tree.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::canonical_atom;
    use datalog::generate::transitive_closure;

    /// The proof tree of the paper's Figure 2(b):
    ///
    /// ```text
    /// ⟨p(X, Y), p(X, Y) :- e(X, Z), p(Z, Y)⟩
    ///   ⟨p(Z, Y), p(Z, Y) :- e(Z, X), p(X, Y)⟩      (reuses X!)
    ///     ⟨p(X, Y), p(X, Y) :- e'(X, Y)⟩
    /// ```
    ///
    /// We express it over `var(Π) = {x1, …, x6}` with X = x1, Y = x2, Z = x3.
    fn figure2_proof_tree(program: &Program) -> ProofTree {
        let ctx = LabelContext::new(program);
        let root_goal = canonical_atom("p", &[1, 2]);
        let mid_goal = canonical_atom("p", &[3, 2]);

        let root_label = ctx
            .labels_for(&root_goal)
            .into_iter()
            .find(|l| l.rule_index == 0 && l.instance.body[0] == canonical_atom("e", &[1, 3]))
            .unwrap();
        // Middle node: p(x3, x2) :- e(x3, x1), p(x1, x2) — reuses x1.
        let mid_label = ctx
            .labels_for(&mid_goal)
            .into_iter()
            .find(|l| l.rule_index == 0 && l.instance.body[0] == canonical_atom("e", &[3, 1]))
            .unwrap();
        let leaf_label = ctx
            .labels_for(&root_goal)
            .into_iter()
            .find(|l| l.rule_index == 1)
            .unwrap();

        Tree::node(
            root_label,
            vec![Tree::node(mid_label, vec![Tree::leaf(leaf_label)])],
        )
    }

    use datalog::program::Program;

    #[test]
    fn figure2_tree_is_a_valid_proof_tree() {
        let program = transitive_closure("e", "ep");
        let tree = figure2_proof_tree(&program);
        assert!(is_valid_proof_tree(&program, &tree));
        assert_eq!(tree.size(), 3);
    }

    #[test]
    fn invalid_trees_are_rejected() {
        let program = transitive_closure("e", "ep");
        let ctx = LabelContext::new(&program);
        let root_goal = canonical_atom("p", &[1, 2]);
        let recursive = ctx
            .labels_for(&root_goal)
            .into_iter()
            .find(|l| l.rule_index == 0)
            .unwrap();
        // A recursive node with no children is not a valid proof tree.
        assert!(!is_valid_proof_tree(
            &program,
            &Tree::leaf(recursive.clone())
        ));
        // A child whose goal does not match the parent's IDB body atom.
        let wrong_child = ctx
            .labels_for(&canonical_atom("p", &[5, 5]))
            .into_iter()
            .find(|l| l.rule_index == 1)
            .unwrap();
        assert!(!is_valid_proof_tree(
            &program,
            &Tree::node(recursive, vec![Tree::leaf(wrong_child)])
        ));
    }

    #[test]
    fn example_5_3_connectedness() {
        // "The occurrences of the variable Y in the root and in the interior
        //  node are connected.  Both occurrences of Y are distinguished.
        //  The occurrences of the variable X in the root and in the leaf are
        //  not connected.  The occurrence of X in the root is distinguished,
        //  but the occurrence of X in the leaf is not."
        let program = transitive_closure("e", "ep");
        let tree = figure2_proof_tree(&program);
        let analysis = ProofTreeAnalysis::new(&tree);

        // Y = x2.  Root head position 1 and middle-node head position 1.
        let y_root = Occurrence {
            node: 0,
            atom: 0,
            position: 1,
        };
        let y_mid = Occurrence {
            node: 1,
            atom: 0,
            position: 1,
        };
        assert!(analysis.connected(y_root, y_mid));
        assert!(analysis.is_distinguished(y_root));
        assert!(analysis.is_distinguished(y_mid));

        // X = x1.  Root head position 0; leaf head position 0 (the leaf's
        // goal is p(x1, x2), whose x1 is a *reused* variable).
        let x_root = Occurrence {
            node: 0,
            atom: 0,
            position: 0,
        };
        let x_leaf = Occurrence {
            node: 2,
            atom: 0,
            position: 0,
        };
        assert!(!analysis.connected(x_root, x_leaf));
        assert!(analysis.is_distinguished(x_root));
        assert!(!analysis.is_distinguished(x_leaf));
    }

    #[test]
    fn expansion_of_figure2_tree_is_the_three_step_path() {
        let program = transitive_closure("e", "ep");
        let ctx = LabelContext::new(&program);
        let tree = figure2_proof_tree(&program);
        let analysis = ProofTreeAnalysis::new(&tree);
        let expansion = analysis.to_expansion(&ctx);
        // The expansion is q(x1, x2) :- e(x1, x3), e(x3, W), ep(W, x2) for a
        // fresh W: three EDB atoms forming a path from x1 to x2.
        assert_eq!(expansion.body.len(), 3);
        assert_eq!(expansion.arity(), 2);
        // It must be a connected path: evaluate it on its own canonical
        // database and check the head tuple is derivable.
        let frozen = cq::canonical::canonical_database(&expansion);
        let answers = cq::eval::evaluate_cq(&expansion, &frozen.database);
        assert!(answers.contains(&frozen.head_tuple));
        // And the reused x1 in the leaf must NOT be identified with the root
        // x1: the body has 4 distinct variables (x1, x3, fresh, x2).
        assert_eq!(expansion.variables().len(), 4);
    }

    #[test]
    fn class_count_matches_variable_structure() {
        let program = transitive_closure("e", "ep");
        let tree = figure2_proof_tree(&program);
        let analysis = ProofTreeAnalysis::new(&tree);
        // Classes: {x1 at root (head+body)}, {x2 everywhere}, {x3 root body +
        // mid head/body}, {x1 at mid body + leaf} = 4 classes.
        assert_eq!(analysis.class_count(), 4);
    }

    #[test]
    fn occurrences_of_different_variables_are_never_connected() {
        let program = transitive_closure("e", "ep");
        let tree = figure2_proof_tree(&program);
        let analysis = ProofTreeAnalysis::new(&tree);
        let x_root = Occurrence {
            node: 0,
            atom: 0,
            position: 0,
        };
        let y_root = Occurrence {
            node: 0,
            atom: 0,
            position: 1,
        };
        assert!(!analysis.connected(x_root, y_root));
    }

    #[test]
    fn render_contains_every_rule_instance() {
        let program = transitive_closure("e", "ep");
        let tree = figure2_proof_tree(&program);
        let text = render_proof_tree(&tree);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("ep(x1, x2)"));
    }
}
