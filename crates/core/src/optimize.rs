//! Source-to-source Datalog program optimisation.
//!
//! The paper motivates the containment machinery with query optimisation
//! ("determining equivalence of queries is one of the most fundamental
//! optimization problems", §1); this module packages the classical
//! semantics-preserving rewrites that the containment substrate makes
//! possible:
//!
//! * [`remove_unreachable_rules`] — drop rules for predicates the goal does
//!   not depend on.
//! * [`minimize_rule_bodies`] — minimise every rule body as a conjunctive
//!   query (remove redundant subgoals; cf. the cores of [`cq::minimize`]).
//! * [`remove_subsumed_rules`] — drop a rule when another rule for the same
//!   predicate subsumes it (there is a containment mapping into it), so the
//!   subsumed rule can never contribute new facts.
//! * [`inline_nonrecursive_predicates`] — resolve away non-recursive
//!   intermediate predicates, trading rule count for rule size (the inverse
//!   of the succinctness phenomenon of Examples 6.1–6.3).
//! * [`eliminate_recursion`] — Example 1.1 as a transformation: when the
//!   program is equivalent to its depth-`k` unfolding (decided by
//!   [`crate::bounded`]), return that unfolding as a nonrecursive program.
//!
//! Every rewrite preserves `Q_Π(D)` for the goal predicate on every
//! database; the tests check this differentially against bottom-up
//! evaluation on random instances.

use std::collections::BTreeSet;

use cq::canonical::CqKey;
use cq::minimize::minimize_cq_with;
use cq::ConjunctiveQuery;
use datalog::atom::{Atom, Pred};
use datalog::program::Program;
use datalog::rule::Rule;

use crate::bounded::find_bound_with;
use crate::cache::DecisionCache;
use crate::containment::{DecisionError, DecisionOptions};
use crate::unify::Unifier;

/// A CQ-containment oracle that answers through the shared
/// [`DecisionCache`] and counts the calls it was asked and the calls the
/// cache answered — the numbers [`OptimizeReport`] surfaces.
#[derive(Default)]
struct CountingOracle {
    calls: usize,
    hits: usize,
}

impl CountingOracle {
    /// Is `theta ⊆ psi`, with precomputed keys?
    fn contained_keyed(&mut self, theta: &CqKey, psi: &CqKey) -> bool {
        self.calls += 1;
        let (verdict, hit) = DecisionCache::global().cq_contained_keyed(theta, psi);
        if hit {
            self.hits += 1;
        }
        verdict
    }

    /// Is `a` equivalent to `b` (two containment calls)?
    fn equivalent(&mut self, a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
        let (ka, kb) = (CqKey::of(a), CqKey::of(b));
        self.contained_keyed(&ka, &kb) && self.contained_keyed(&kb, &ka)
    }
}

/// Options for the composite [`optimize`] pass.
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Run [`minimize_rule_bodies`].
    pub minimize_bodies: bool,
    /// Run [`remove_subsumed_rules`].
    pub remove_subsumed: bool,
    /// Run [`inline_nonrecursive_predicates`].
    pub inline_nonrecursive: bool,
    /// Abort inlining when the program would grow beyond this many rules.
    pub inline_rule_limit: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            minimize_bodies: true,
            remove_subsumed: true,
            inline_nonrecursive: false,
            inline_rule_limit: 256,
        }
    }
}

/// Size and containment-work accounting for an optimisation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Rules before.
    pub rules_before: usize,
    /// Rules after.
    pub rules_after: usize,
    /// Total atom count before.
    pub atoms_before: usize,
    /// Total atom count after.
    pub atoms_after: usize,
    /// CQ-containment decisions the passes asked for.
    pub containment_calls: usize,
    /// How many of those the shared [`DecisionCache`] answered without
    /// re-deciding (repeated `optimize` runs over the same program answer
    /// everything from the cache).
    pub containment_cache_hits: usize,
    /// Canonical-database decisions evaluated during this pass, tallied per
    /// strategy (see [`crate::cq_in_datalog::strategy_decision_counts`]).
    /// Process-global counters sampled around the pass, so concurrent work
    /// in other threads can inflate the numbers; cache hits evaluate nothing
    /// and count nothing.
    pub strategy_decisions: crate::cq_in_datalog::StrategyCounts,
}

/// Run the configured pipeline: unreachable-rule removal, body minimisation,
/// subsumed-rule removal, optional inlining of non-recursive predicates.
pub fn optimize(
    program: &Program,
    goal: Pred,
    options: OptimizeOptions,
) -> (Program, OptimizeReport) {
    let mut report = OptimizeReport {
        rules_before: program.len(),
        atoms_before: program.atom_count(),
        ..OptimizeReport::default()
    };
    let decisions_before = crate::cq_in_datalog::strategy_decision_counts();
    let mut oracle = CountingOracle::default();
    let mut current = remove_unreachable_rules(program, goal);
    if options.minimize_bodies {
        current = minimize_rule_bodies_with(&current, &mut oracle);
    }
    if options.remove_subsumed {
        current = remove_subsumed_rules_with(&current, &mut oracle);
    }
    if options.inline_nonrecursive {
        current = inline_nonrecursive_predicates(&current, goal, options.inline_rule_limit);
    }
    report.rules_after = current.len();
    report.atoms_after = current.atom_count();
    report.containment_calls = oracle.calls;
    report.containment_cache_hits = oracle.hits;
    report.strategy_decisions =
        crate::cq_in_datalog::strategy_decision_counts().since(&decisions_before);
    (current, report)
}

/// Keep only the rules of predicates the goal (transitively) depends on.
pub fn remove_unreachable_rules(program: &Program, goal: Pred) -> Program {
    let mut needed: BTreeSet<Pred> = BTreeSet::from([goal]);
    let mut changed = true;
    while changed {
        changed = false;
        for rule in program.rules() {
            if !needed.contains(&rule.head_pred()) {
                continue;
            }
            for atom in &rule.body {
                if needed.insert(atom.pred) {
                    changed = true;
                }
            }
        }
    }
    Program::new(
        program
            .rules()
            .iter()
            .filter(|r| needed.contains(&r.head_pred()))
            .cloned()
            .collect(),
    )
}

/// Minimise every rule body as a conjunctive query over its (EDB and IDB)
/// body predicates.  Sound for recursive programs because a rule application
/// treats every body predicate as a fixed relation.  Equivalence checks are
/// answered through the shared [`DecisionCache`].
pub fn minimize_rule_bodies(program: &Program) -> Program {
    minimize_rule_bodies_with(program, &mut CountingOracle::default())
}

fn minimize_rule_bodies_with(program: &Program, oracle: &mut CountingOracle) -> Program {
    Program::new(
        program
            .rules()
            .iter()
            .map(|rule| {
                minimize_cq_with(&ConjunctiveQuery::from_rule(rule), &mut |a, b| {
                    oracle.equivalent(a, b)
                })
                .to_rule()
            })
            .collect(),
    )
}

/// Remove rules that are subsumed by another rule for the same predicate:
/// if there is a containment mapping from rule `r'` into rule `r` (both read
/// as conjunctive queries), every fact `r` derives is also derived by `r'`,
/// so `r` can be dropped.  Mutually subsuming (equivalent) rules keep their
/// first representative.
pub fn remove_subsumed_rules(program: &Program) -> Program {
    remove_subsumed_rules_with(program, &mut CountingOracle::default())
}

fn remove_subsumed_rules_with(program: &Program, oracle: &mut CountingOracle) -> Program {
    // Canonicalise (= compute the cache key of) every rule once; the
    // quadratic containment sweep below then runs entirely on keys.
    let queries: Vec<CqKey> = program
        .rules()
        .iter()
        .map(|r| CqKey::of(&ConjunctiveQuery::from_rule(r)))
        .collect();
    let mut keep = vec![true; queries.len()];
    for i in 0..queries.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..queries.len() {
            if i == j || !keep[j] || queries[i].as_query().name() != queries[j].as_query().name() {
                continue;
            }
            // Drop rule i if it is contained in rule j; on equivalence keep
            // the smaller index.
            if oracle.contained_keyed(&queries[i], &queries[j]) {
                let mutual = oracle.contained_keyed(&queries[j], &queries[i]);
                if !mutual || j < i {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    Program::new(
        program
            .rules()
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(r, _)| r.clone())
            .collect(),
    )
}

/// Resolve one body atom of `rule` against a defining rule of its predicate.
/// Returns `None` when the heads do not unify.
fn resolve_body_atom(rule: &Rule, index: usize, definition: &Rule, fresh: usize) -> Option<Rule> {
    let (definition, _) = definition.freshen(&format!("inl{fresh}_"));
    let mut unifier = Unifier::new();
    if !unifier.unify_atoms(&definition.head, &rule.body[index]) {
        return None;
    }
    let mut body: Vec<Atom> = Vec::with_capacity(rule.body.len() + definition.body.len() - 1);
    body.extend_from_slice(&rule.body[..index]);
    body.extend(definition.body.iter().cloned());
    body.extend_from_slice(&rule.body[index + 1..]);
    Some(Rule::new(
        unifier.apply_atom(&rule.head),
        body.iter().map(|a| unifier.apply_atom(a)).collect(),
    ))
}

/// Inline away every non-recursive IDB predicate other than the goal,
/// resolving each occurrence against all of its defining rules.  Stops (and
/// returns the program built so far) when the result would exceed
/// `rule_limit` rules.
pub fn inline_nonrecursive_predicates(program: &Program, goal: Pred, rule_limit: usize) -> Program {
    let mut current = program.clone();
    let mut fresh = 0usize;
    loop {
        let graph = current.dependency_graph();
        // A predicate is inlinable when it is IDB, not the goal, not
        // involved in any recursion, and actually used in some body.
        let candidate = current.idb_predicates().into_iter().find(|&p| {
            p != goal
                && !graph.is_recursive_pred(p)
                && current
                    .rules()
                    .iter()
                    .any(|r| r.body.iter().any(|a| a.pred == p))
        });
        let Some(target) = candidate else {
            return current;
        };
        let definitions: Vec<Rule> = current.rules_for(target).map(|(_, r)| r.clone()).collect();
        let mut next: Vec<Rule> = Vec::new();
        for rule in current.rules() {
            if rule.head_pred() == target {
                continue; // the definitions themselves disappear
            }
            // Resolve occurrences of `target` one at a time (a rule may
            // mention it several times).  Each pending rule carries its own
            // next occurrence position: the definitions may have different
            // body lengths, so positions are not shared across rules.
            let mut pending = vec![rule.clone()];
            while pending
                .iter()
                .any(|r| r.body.iter().any(|a| a.pred == target))
            {
                // Expansion is multiplicative per occurrence (d^k rules for
                // k occurrences with d definitions), so the limit must be
                // enforced mid-rule, not only after full expansion.
                if pending.len() > rule_limit {
                    return current;
                }
                let mut resolved = Vec::new();
                for r in &pending {
                    let Some(position) = r.body.iter().position(|a| a.pred == target) else {
                        resolved.push(r.clone()); // already fully resolved
                        continue;
                    };
                    for definition in &definitions {
                        fresh += 1;
                        if let Some(new_rule) = resolve_body_atom(r, position, definition, fresh) {
                            resolved.push(new_rule);
                        }
                    }
                }
                pending = resolved;
            }
            next.extend(pending);
            if next.len() > rule_limit {
                return current;
            }
        }
        current = Program::new(next);
    }
}

/// Recursion elimination (Example 1.1 as a transformation): if the program
/// is equivalent to its depth-`k` unfolding for some `k ≤ max_depth`,
/// return that unfolding as a nonrecursive program with the same goal
/// predicate; otherwise return `Ok(None)`.
pub fn eliminate_recursion(
    program: &Program,
    goal: Pred,
    max_depth: usize,
) -> Result<Option<Program>, DecisionError> {
    eliminate_recursion_with(program, goal, max_depth, DecisionOptions::default())
}

/// As [`eliminate_recursion`], with explicit decision options.  The default
/// options share the [`DecisionCache`], so a boundedness probe already paid
/// for by [`crate::bounded::find_bound`] is never re-decided here.
pub fn eliminate_recursion_with(
    program: &Program,
    goal: Pred,
    max_depth: usize,
    options: DecisionOptions,
) -> Result<Option<Program>, DecisionError> {
    let Some((_, unfolding)) = find_bound_with(program, goal, max_depth, options)? else {
        return Ok(None);
    };
    let rules: Vec<Rule> = unfolding.disjuncts.iter().map(|d| d.to_rule()).collect();
    let nonrecursive = Program::new(rules);
    debug_assert!(nonrecursive.is_nonrecursive());
    Ok(Some(nonrecursive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::evaluate;
    use datalog::generate::{
        chain_database, random_database, random_program, transitive_closure, RandomDatabaseConfig,
        RandomProgramConfig,
    };
    use datalog::parser::parse_program;

    fn goal_answers(
        program: &Program,
        goal: Pred,
        db: &datalog::database::Database,
    ) -> BTreeSet<Vec<datalog::term::Constant>> {
        evaluate(program, db)
            .relation(goal)
            .iter()
            .cloned()
            .collect()
    }

    #[test]
    fn unreachable_rules_are_removed() {
        let program = parse_program(
            "p(X, Y) :- e(X, Y).\n\
             p(X, Y) :- e(X, Z), p(Z, Y).\n\
             junk(X) :- other(X).\n\
             more_junk(X) :- junk(X).",
        )
        .unwrap();
        let cleaned = remove_unreachable_rules(&program, Pred::new("p"));
        assert_eq!(cleaned.len(), 2);
        assert!(cleaned
            .rules()
            .iter()
            .all(|r| r.head_pred() == Pred::new("p")));
    }

    #[test]
    fn redundant_subgoals_are_removed_from_rule_bodies() {
        // The second e-atom is a homomorphic image of the first.
        let program = parse_program("p(X, Y) :- e(X, Y), e(X, W).").unwrap();
        let minimized = minimize_rule_bodies(&program);
        assert_eq!(minimized.rules()[0].body.len(), 1);
        // Semantics preserved on a sample database.
        let db = chain_database("e", 4);
        assert_eq!(
            goal_answers(&program, Pred::new("p"), &db),
            goal_answers(&minimized, Pred::new("p"), &db)
        );
    }

    #[test]
    fn subsumed_rules_are_removed() {
        // The second rule is an instance of the first (more constrained), so
        // it never derives anything new.
        let program = parse_program(
            "p(X, Y) :- e(X, Y).\n\
             p(X, X) :- e(X, X).\n\
             p(X, Y) :- e(X, Y), f(Y).",
        )
        .unwrap();
        let slim = remove_subsumed_rules(&program);
        assert_eq!(slim.len(), 1);
        assert_eq!(slim.rules()[0].body.len(), 1);
    }

    #[test]
    fn equivalent_duplicate_rules_keep_one_copy() {
        let program = parse_program(
            "p(X, Y) :- e(X, Z), e(Z, Y).\n\
             p(A, B) :- e(A, C), e(C, B).",
        )
        .unwrap();
        let slim = remove_subsumed_rules(&program);
        assert_eq!(slim.len(), 1);
    }

    #[test]
    fn recursive_rules_are_never_subsumed_incorrectly() {
        let tc = transitive_closure("e", "e");
        let slim = remove_subsumed_rules(&tc);
        assert_eq!(slim.len(), tc.len(), "neither TC rule subsumes the other");
    }

    #[test]
    fn inlining_eliminates_intermediate_predicates() {
        let program = parse_program(
            "p(X, Y) :- hop(X, Z), hop(Z, Y).\n\
             hop(X, Y) :- e(X, Y).\n\
             hop(X, Y) :- f(X, Y).",
        )
        .unwrap();
        let inlined = inline_nonrecursive_predicates(&program, Pred::new("p"), 64);
        // hop is gone; p now has 2 × 2 = 4 rules over e/f directly.
        assert!(!inlined.idb_predicates().contains(&Pred::new("hop")));
        assert_eq!(inlined.len(), 4);
        let db = {
            let mut db = chain_database("e", 5);
            db.absorb(&chain_database("f", 5));
            db
        };
        assert_eq!(
            goal_answers(&program, Pred::new("p"), &db),
            goal_answers(&inlined, Pred::new("p"), &db)
        );
    }

    #[test]
    fn inlining_handles_definitions_of_different_body_lengths() {
        // After resolving the first `hop` occurrence, the two pending rules
        // have different body lengths, so the second occurrence sits at
        // different positions — a shared position would silently drop the
        // mixed disjuncts (regression test).
        let program = parse_program(
            "p(X, Y) :- hop(X, Z), hop(Z, Y).\n\
             hop(X, Y) :- e(X, Y).\n\
             hop(X, Y) :- e(X, W), e(W, Y).",
        )
        .unwrap();
        let inlined = inline_nonrecursive_predicates(&program, Pred::new("p"), 64);
        assert!(!inlined.idb_predicates().contains(&Pred::new("hop")));
        assert_eq!(inlined.len(), 4, "2 definitions x 2 occurrences");
        let db = chain_database("e", 6);
        assert_eq!(
            goal_answers(&program, Pred::new("p"), &db),
            goal_answers(&inlined, Pred::new("p"), &db)
        );
    }

    #[test]
    fn inlining_respects_the_rule_limit_and_recursion() {
        let tc = transitive_closure("e", "e");
        // The only IDB predicate is recursive, so nothing changes.
        let same = inline_nonrecursive_predicates(&tc, Pred::new("p"), 64);
        assert_eq!(same.len(), tc.len());
        // A tiny limit aborts the transformation and returns the input.
        let program = parse_program(
            "p(X, Y) :- hop(X, Z), hop(Z, Y).\n\
             hop(X, Y) :- e(X, Y).\n\
             hop(X, Y) :- f(X, Y).\n\
             hop(X, Y) :- g(X, Y).",
        )
        .unwrap();
        let aborted = inline_nonrecursive_predicates(&program, Pred::new("p"), 2);
        assert_eq!(aborted.len(), program.len());
        // Mid-rule blow-up: three hop occurrences x four definitions would
        // materialise 4^3 intermediate rules; the limit must abort during
        // the expansion, not only after it.
        let wide = parse_program(
            "p(X, Y) :- hop(X, Z), hop(Z, W), hop(W, Y).\n\
             hop(X, Y) :- e(X, Y).\n\
             hop(X, Y) :- f(X, Y).\n\
             hop(X, Y) :- g(X, Y).\n\
             hop(X, Y) :- h(X, Y).",
        )
        .unwrap();
        let aborted = inline_nonrecursive_predicates(&wide, Pred::new("p"), 8);
        assert_eq!(aborted.len(), wide.len());
    }

    #[test]
    fn recursion_elimination_reproduces_example_1_1() {
        let bounded = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- trendy(X), buys(Z, Y).",
        )
        .unwrap();
        let nonrec = eliminate_recursion(&bounded, Pred::new("buys"), 3)
            .unwrap()
            .expect("Π₁ of Example 1.1 is bounded");
        assert!(nonrec.is_nonrecursive());
        assert_eq!(nonrec.len(), 2);

        let unbounded = parse_program(
            "buys(X, Y) :- likes(X, Y).\n\
             buys(X, Y) :- knows(X, Z), buys(Z, Y).",
        )
        .unwrap();
        assert!(eliminate_recursion(&unbounded, Pred::new("buys"), 3)
            .unwrap()
            .is_none());
    }

    #[test]
    fn full_pipeline_preserves_semantics_on_random_programs() {
        let program_config = RandomProgramConfig {
            edb_predicates: 2,
            idb_predicates: 2,
            rules: 5,
            max_body_atoms: 3,
            max_variables: 4,
            idb_probability: 0.35,
        };
        let db_config = RandomDatabaseConfig {
            domain_size: 4,
            relations: vec![("e0".into(), 2, 7), ("e1".into(), 2, 7)],
        };
        let goal = Pred::new("q0");
        for seed in 0..40u64 {
            let program = random_program(&program_config, seed);
            let (optimized, report) = optimize(
                &program,
                goal,
                OptimizeOptions {
                    inline_nonrecursive: true,
                    ..OptimizeOptions::default()
                },
            );
            assert!(report.rules_after <= report.rules_before + 64);
            for db_seed in 0..3u64 {
                let db = random_database(&db_config, seed * 17 + db_seed);
                assert_eq!(
                    goal_answers(&program, goal, &db),
                    goal_answers(&optimized, goal, &db),
                    "optimisation changed the goal relation (seed {seed}, db {db_seed})"
                );
            }
        }
    }

    #[test]
    fn repeated_optimize_answers_containment_from_the_cache() {
        // The ablation bench's messy workload: the first pass may or may not
        // be warm (other tests share the global cache), but a repeated pass
        // must answer every containment question it asks from the cache.
        let messy = parse_program(
            "reach(X, Y) :- hop(X, Y).\n\
             reach(X, Y) :- hop(X, Z), reach(Z, Y).\n\
             reach(X, Y) :- hop(X, Y), hop(X, W), hop(X, W2).\n\
             reach(X, Y) :- hop(X, Z), hop(X, Z2), reach(Z, Y).\n\
             hop(X, Y) :- e(X, Y).\n\
             hop(X, Y) :- e(X, Y), e(X, W).",
        )
        .unwrap();
        let goal = Pred::new("reach");
        let (first_program, first) = optimize(&messy, goal, OptimizeOptions::default());
        assert!(first.containment_calls > 0);
        let (second_program, second) = optimize(&messy, goal, OptimizeOptions::default());
        assert_eq!(first_program, second_program);
        assert_eq!(second.containment_calls, first.containment_calls);
        assert!(
            second.containment_cache_hits > 0,
            "repeated pass must hit the shared cache"
        );
        assert_eq!(second.containment_cache_hits, second.containment_calls);
    }

    #[test]
    fn report_accounts_for_removed_rules_and_atoms() {
        let program = parse_program(
            "p(X, Y) :- e(X, Y), e(X, Y).\n\
             p(X, Y) :- e(X, Y).\n\
             junk(X) :- e(X, X).",
        )
        .unwrap();
        let (optimized, report) = optimize(&program, Pred::new("p"), OptimizeOptions::default());
        assert_eq!(report.rules_before, 3);
        assert_eq!(report.rules_after, 1);
        assert!(report.atoms_after < report.atoms_before);
        assert_eq!(optimized.len(), 1);
    }
}
